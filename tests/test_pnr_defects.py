"""Defect maps, defect-aware compiles, and warm-started die repair.

The ISSUE 8 contract, stated as tests:

* a :class:`DefectMap` is immutable, bounds-checked, order-free and
  content-addressed — two maps with the same defects share a digest;
* the samplers are deterministic per seed and tie into the paper's
  Section 3 variation models (``sample_die``);
* placement never seeds or anneals a gate onto a dead cell, on either
  the batched or the scalar anneal path;
* a defect-aware compile verifies dual-backend **and** is proven to
  never configure a dead resource (``assert_defect_clean``);
* ``repair_for_die`` reuses the golden compile, is deterministic,
  verifies, proves cleanliness — and when a die is beyond warm repair
  it raises :class:`RepairFallback` rather than silently degrading
  (the Hypothesis sweep at the bottom states this as a property over
  random dies at several defect densities).

Repair reuses the golden placement, so its artifact is generally *not*
bit-identical to a cold defect-aware compile of the same die — the
contract is equivalence (dual-backend verify), cleanliness and
determinism, exactly as ``docs/defect-tolerance.md`` spells out.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.montecarlo import (
    analytic_cell_yield,
    cell_fail_probability,
    strict_margin_cell_yield,
)
from repro.datapath.adder import ripple_carry_netlist
from repro.fabric.array import CellArray
from repro.fabric.driver import DriverMode
from repro.fabric.floorplan import Region
from repro.fabric.nandcell import Direction, N_INPUTS, N_ROWS
from repro.pnr import (
    DefectMap,
    DefectViolation,
    PnrError,
    RepairFallback,
    anneal_placement,
    assert_defect_clean,
    compile_to_fabric,
    defect_violations,
    initial_placement,
    map_netlist,
    pair_blocked_cells,
    repair_for_die,
    sample_defect_map,
    sample_die,
    verify_equivalence,
)


@pytest.fixture(scope="module")
def rca4_golden():
    """One defect-free golden compile the repair tests adapt to dies."""
    return compile_to_fabric(ripple_carry_netlist(4), seed=0, workers=0)


def golden_shape(golden):
    return (golden.array.n_rows, golden.array.n_cols)


def die_for(golden, seed, cell_fail=0.01, wire_fail=0.004, stuck_fail=0.004):
    """A reproducible defective die of the golden array's shape."""
    return sample_defect_map(
        *golden_shape(golden),
        cell_fail=cell_fail,
        wire_fail=wire_fail,
        stuck_fail=stuck_fail,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# DefectMap: normalisation, validation, content addressing
# ---------------------------------------------------------------------------


def test_defect_map_normalises_collections_to_frozensets():
    dm = DefectMap(
        4, 4,
        dead_cells=[(1, 2), [3, 0], (1, 2)],
        dead_wires=[[0, 0, 5]],
        stuck_rows=((2, 2, 1),),
    )
    assert dm.dead_cells == frozenset({(1, 2), (3, 0)})
    assert dm.dead_wires == frozenset({(0, 0, 5)})
    assert dm.stuck_rows == frozenset({(2, 2, 1)})
    assert dm.n_defects == 4
    assert not dm.is_clean
    assert dm.shape == (4, 4)


def test_defect_map_is_clean_when_empty():
    assert DefectMap(3, 3).is_clean
    assert DefectMap(3, 3).n_defects == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"dead_cells": [(4, 0)]},
        {"dead_cells": [(0, -1)]},
        {"dead_wires": [(5, 0, 0)]},          # r may reach n_rows, not past
        {"dead_wires": [(0, 0, N_INPUTS)]},
        {"stuck_rows": [(0, 0, N_ROWS)]},
        {"stuck_rows": [(4, 0, 0)]},          # stuck rows live on cells
    ],
)
def test_defect_map_rejects_out_of_bounds_resources(kwargs):
    with pytest.raises(ValueError):
        DefectMap(4, 4, **kwargs)


def test_defect_map_rejects_degenerate_shape():
    with pytest.raises(ValueError):
        DefectMap(0, 4)


def test_boundary_wires_are_legal_defects():
    # r == n_rows / c == n_cols name output-pad wires off the die edge.
    dm = DefectMap(4, 4, dead_wires=[(4, 2, 0), (1, 4, 3)])
    assert dm.n_defects == 2


def test_digest_is_content_addressed():
    a = DefectMap(4, 4, dead_cells=[(1, 2), (3, 0)], stuck_rows=[(2, 2, 1)])
    b = DefectMap(4, 4, dead_cells=[(3, 0), (1, 2)], stuck_rows=[(2, 2, 1)])
    assert a.digest() == b.digest()  # construction order is irrelevant
    c = DefectMap(4, 4, dead_cells=[(1, 2)], stuck_rows=[(2, 2, 1)])
    assert a.digest() != c.digest()
    # shape participates: the same defects on a bigger die are a
    # different die
    d = DefectMap(5, 4, dead_cells=[(1, 2), (3, 0)], stuck_rows=[(2, 2, 1)])
    assert a.digest() != d.digest()
    assert DefectMap(4, 4).digest() != DefectMap(5, 5).digest()


# ---------------------------------------------------------------------------
# Samplers: determinism and the variation-model tie-in
# ---------------------------------------------------------------------------


def test_sampler_is_deterministic_per_seed():
    kw = dict(cell_fail=0.05, wire_fail=0.02, stuck_fail=0.02)
    a = sample_defect_map(20, 20, **kw, seed=7)
    b = sample_defect_map(20, 20, **kw, seed=7)
    c = sample_defect_map(20, 20, **kw, seed=8)
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()
    assert a.n_defects > 0


def test_sampler_zero_rates_draw_a_clean_die():
    assert sample_defect_map(16, 16, seed=3).is_clean


@pytest.mark.parametrize("name", ["cell_fail", "wire_fail", "stuck_fail"])
def test_sampler_validates_probabilities(name):
    with pytest.raises(ValueError):
        sample_defect_map(4, 4, **{name: 1.5})
    with pytest.raises(ValueError):
        sample_defect_map(4, 4, **{name: -0.1})


def test_sample_die_matches_explicit_variation_rates():
    # sample_die is exactly sample_defect_map fed by the montecarlo
    # models: same seed, same rates, same die.
    sigma = 0.25
    p_cell = cell_fail_probability(sigma)
    explicit = sample_defect_map(
        12, 12,
        cell_fail=p_cell,
        wire_fail=0.25 * p_cell,
        stuck_fail=1.0 - strict_margin_cell_yield(sigma),
        seed=11,
    )
    assert sample_die(12, 12, sigma_vt=sigma, seed=11).digest() == explicit.digest()


def test_sample_die_ideal_process_is_defect_free():
    # sigma 0 is the ideal-process limit: every failure rate collapses
    # to zero, so every die of the lot is clean.
    assert sample_die(16, 16, sigma_vt=0.0, seed=5).is_clean


def test_sample_die_validates_wire_fraction():
    with pytest.raises(ValueError):
        sample_die(4, 4, sigma_vt=0.1, wire_fail_frac=2.0)


# ---------------------------------------------------------------------------
# Variation-model edge cases (the montecarlo satellite)
# ---------------------------------------------------------------------------


def test_analytic_cell_yield_sigma_zero_is_the_ideal_limit():
    assert analytic_cell_yield(0.0) == 1.0
    # A widened force margin pushes the good interval above the nominal
    # threshold: with zero spread every cell then fails.
    assert analytic_cell_yield(0.0, margin=0.5) == 0.0


def test_analytic_cell_yield_rejects_negative_sigma():
    with pytest.raises(ValueError):
        analytic_cell_yield(-0.01)
    with pytest.raises(ValueError):
        strict_margin_cell_yield(-0.01)


def test_analytic_cell_yield_collapses_at_extreme_sigma():
    assert analytic_cell_yield(1e3) < 1e-3
    assert strict_margin_cell_yield(1e3) < 0.1


def test_yields_are_probabilities_and_decrease_with_sigma():
    grid = [0.0, 0.05, 0.1, 0.2, 0.4]
    for fn in (analytic_cell_yield, strict_margin_cell_yield):
        ys = [fn(s) for s in grid]
        assert all(0.0 <= y <= 1.0 for y in ys)
        assert ys == sorted(ys, reverse=True), f"{fn.__name__} not monotone"
    assert strict_margin_cell_yield(0.0) == 1.0


def test_cell_fail_probability_is_the_yield_complement():
    for sigma in (0.0, 0.1, 0.3):
        assert cell_fail_probability(sigma) == pytest.approx(
            1.0 - analytic_cell_yield(sigma)
        )


# ---------------------------------------------------------------------------
# Pair blocking: wire and row defects veto 2-cell macro starts
# ---------------------------------------------------------------------------


def test_pair_blocked_cells_covers_internal_wires():
    # Wire (2, 3, 1) is inside the pair span: a pair starting at (2, 3)
    # reads it as a pin, one starting at (2, 2) drives it internally.
    dm = DefectMap(6, 6, dead_wires=[(2, 3, 1)])
    assert pair_blocked_cells(dm) == frozenset({(2, 3), (2, 2)})


def test_pair_blocked_cells_ignores_wires_above_the_span():
    # Wire index 5 is neither a pair pin column nor an internal row, so
    # it never vetoes a pair (plain gates are covered by the clean
    # check, not by pair blocking).
    dm = DefectMap(6, 6, dead_wires=[(2, 3, 5)])
    assert pair_blocked_cells(dm) == frozenset()


def test_pair_blocked_cells_covers_stuck_rows():
    dm = DefectMap(6, 6, stuck_rows=[(4, 1, 0)])
    assert pair_blocked_cells(dm) == frozenset({(4, 1), (4, 0)})


def test_pair_blocked_cells_excludes_dead_cells():
    # Dead cells are hard-blocked by the placement grid itself; the
    # pair veto is only for the subtler wire/row defects.
    dm = DefectMap(6, 6, dead_cells=[(1, 1)])
    assert pair_blocked_cells(dm) == frozenset()


# ---------------------------------------------------------------------------
# Placement: dead sites are never seeded and never annealed onto
# ---------------------------------------------------------------------------


def placed_cells(design, placement):
    cells = set()
    for gate in design.gates.values():
        cells.update(placement.cells_of(gate))
    return cells


def test_initial_placement_avoids_blocked_cells():
    design = map_netlist(ripple_carry_netlist(4))
    region = Region("t", 0, 0, 20, 20)
    blocked = frozenset(
        (r, c) for r in range(20) for c in range(20) if (r * 7 + c * 3) % 13 == 0
    )
    placement = initial_placement(
        design, region, random.Random(0), blocked=blocked
    )
    assert not placed_cells(design, placement) & blocked


@pytest.mark.parametrize("batch_moves", [None, 0], ids=["batched", "scalar"])
def test_anneal_never_moves_onto_blocked_cells(batch_moves):
    design = map_netlist(ripple_carry_netlist(4))
    region = Region("t", 0, 0, 20, 20)
    blocked = frozenset(
        (r, c) for r in range(20) for c in range(20) if (r + 2 * c) % 11 == 0
    )
    placement = initial_placement(
        design, region, random.Random(0), blocked=blocked
    )
    annealed = anneal_placement(
        design, placement, random.Random(1),
        steps=600, batch_moves=batch_moves, blocked=blocked,
    )
    assert not placed_cells(design, annealed) & blocked


def test_initial_placement_jams_when_the_die_is_mostly_dead():
    design = map_netlist(ripple_carry_netlist(4))
    region = Region("t", 0, 0, 12, 12)
    blocked = frozenset(
        (r, c) for r in range(12) for c in range(12) if (r + c) % 5 != 4
    )
    from repro.pnr import PlacementError

    with pytest.raises(PlacementError):
        initial_placement(design, region, random.Random(0), blocked=blocked)


# ---------------------------------------------------------------------------
# The clean checker: every defect kind is detected on a hand-built array
# ---------------------------------------------------------------------------


def test_clean_checker_passes_a_blank_array():
    dm = DefectMap(3, 3, dead_cells=[(1, 1)], dead_wires=[(1, 1, 2)],
                   stuck_rows=[(0, 0, 1)])
    array = CellArray(3, 3)
    assert defect_violations(array, dm) == []
    assert_defect_clean(array, dm)  # does not raise


def test_clean_checker_flags_a_configured_dead_cell():
    dm = DefectMap(3, 3, dead_cells=[(1, 1)])
    array = CellArray(3, 3)
    cfg = array.cell(1, 1)
    cfg.set_product(0, [0])
    cfg.drivers[0] = DriverMode.BUFFER
    (violation,) = defect_violations(array, dm)
    assert "dead cell" in violation


def test_clean_checker_flags_a_programmed_stuck_row():
    dm = DefectMap(3, 3, stuck_rows=[(2, 0, 3)])
    array = CellArray(3, 3)
    cfg = array.cell(2, 0)
    cfg.set_product(3, [1])
    cfg.drivers[3] = DriverMode.BUFFER
    (violation,) = defect_violations(array, dm)
    assert "stuck" in violation


def test_clean_checker_flags_driving_a_dead_wire_east():
    dm = DefectMap(3, 3, dead_wires=[(1, 1, 2)])
    array = CellArray(3, 3)
    # Wire (1, 1, 2)'s west driver is cell (1, 0), row 2, EAST.
    cfg = array.cell(1, 0)
    cfg.set_product(2, [0])
    cfg.drivers[2] = DriverMode.BUFFER
    cfg.directions[2] = Direction.EAST
    (violation,) = defect_violations(array, dm)
    assert "drives dead wire" in violation


def test_clean_checker_flags_driving_a_dead_wire_north():
    dm = DefectMap(3, 3, dead_wires=[(1, 1, 2)])
    array = CellArray(3, 3)
    # Wire (1, 1, 2)'s south driver is cell (0, 1), row 2, NORTH.
    cfg = array.cell(0, 1)
    cfg.set_product(2, [0])
    cfg.drivers[2] = DriverMode.BUFFER
    cfg.directions[2] = Direction.NORTH
    (violation,) = defect_violations(array, dm)
    assert "drives dead wire" in violation


def test_clean_checker_flags_reading_a_dead_wire():
    dm = DefectMap(3, 3, dead_wires=[(1, 1, 2)])
    array = CellArray(3, 3)
    # Cell (1, 1) reads wire (1, 1, 2) through input column 2.
    cfg = array.cell(1, 1)
    cfg.set_product(0, [2])
    cfg.drivers[0] = DriverMode.BUFFER
    (violation,) = defect_violations(array, dm)
    assert "reads dead wire" in violation


def test_clean_checker_ignores_unrelated_configuration():
    # A fully-used cell far from every defect is not a violation.
    dm = DefectMap(3, 3, dead_cells=[(2, 2)], dead_wires=[(2, 2, 0)])
    array = CellArray(3, 3)
    cfg = array.cell(0, 0)
    cfg.set_product(0, [0, 1])
    cfg.drivers[0] = DriverMode.BUFFER
    assert defect_violations(array, dm) == []


def test_assert_defect_clean_raises_with_a_sample_of_violations():
    dm = DefectMap(3, 3, dead_cells=[(1, 1)])
    array = CellArray(3, 3)
    array.cell(1, 1).set_product(0, [0]).drivers[0] = DriverMode.BUFFER
    with pytest.raises(DefectViolation, match="dead cell"):
        assert_defect_clean(array, dm)


# ---------------------------------------------------------------------------
# Defect-aware cold compiles
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("die_seed", [1, 2, 3])
def test_defect_aware_compile_verifies_and_is_clean(rca4_golden, die_seed):
    dm = die_for(rca4_golden, die_seed)
    assert dm.n_defects > 0
    result = compile_to_fabric(
        ripple_carry_netlist(4), defect_map=dm, seed=0, workers=0
    )
    verify_equivalence(result, n_vectors=64, event_vectors=2)
    assert_defect_clean(result.array, dm)


def test_defect_map_pins_the_array_shape(rca4_golden):
    rows, cols = golden_shape(rca4_golden)
    dm = DefectMap(rows + 3, cols + 2, dead_cells=[(0, 0)])
    result = compile_to_fabric(
        ripple_carry_netlist(4), defect_map=dm, seed=0, workers=0
    )
    assert (result.array.n_rows, result.array.n_cols) == dm.shape


def test_defect_map_shape_must_match_an_explicit_array():
    dm = DefectMap(12, 12)
    with pytest.raises(PnrError, match="12x12"):
        compile_to_fabric(
            ripple_carry_netlist(4), array=CellArray(14, 14), defect_map=dm,
            seed=0, workers=0,
        )


def test_defect_map_is_incompatible_with_sharding():
    dm = DefectMap(12, 12)
    with pytest.raises(PnrError, match="shard"):
        compile_to_fabric(
            ripple_carry_netlist(8), shards=2, defect_map=dm,
            seed=0, workers=0,
        )


def test_defect_aware_compile_exhausts_the_retry_ladder_on_a_dead_die():
    # Nearly every cell dead: every placement attempt jams, and the
    # flow reports the failure instead of emitting onto dead silicon.
    rows = cols = 12
    dm = DefectMap(
        rows, cols,
        dead_cells=[(r, c) for r in range(rows) for c in range(cols)
                    if (r + c) % 6 != 5],
    )
    with pytest.raises(PnrError):
        compile_to_fabric(
            ripple_carry_netlist(4), defect_map=dm, seed=0, workers=0,
            max_attempts=2,
        )


# ---------------------------------------------------------------------------
# Warm-started per-die repair
# ---------------------------------------------------------------------------


def test_repair_verifies_cleans_and_reuses_the_golden_work(rca4_golden):
    dm = die_for(rca4_golden, seed=1)
    assert dm.n_defects > 0
    stats = {}
    repaired = repair_for_die(rca4_golden, dm, seed=0, stats=stats)
    verify_equivalence(repaired, n_vectors=64, event_vectors=2)
    assert_defect_clean(repaired.array, dm)
    # The point of repair is reuse: most nets replay from the golden
    # journals instead of being searched from scratch.
    assert stats["replayed"] > stats["searched"]
    assert stats["moved"] >= stats["displaced"]


def test_repair_of_a_clean_die_reproduces_the_golden_bitstream(rca4_golden):
    dm = DefectMap(*golden_shape(rca4_golden))
    repaired = repair_for_die(rca4_golden, dm, seed=0)
    assert np.array_equal(
        repaired.to_bitstream(), rca4_golden.to_bitstream()
    )


def test_repair_is_deterministic(rca4_golden):
    dm = die_for(rca4_golden, seed=2)
    a = repair_for_die(rca4_golden, dm, seed=0)
    b = repair_for_die(rca4_golden, dm, seed=0)
    assert np.array_equal(a.to_bitstream(), b.to_bitstream())


def test_repair_demands_a_matching_die_shape(rca4_golden):
    rows, cols = golden_shape(rca4_golden)
    with pytest.raises(RepairFallback, match="die"):
        repair_for_die(rca4_golden, DefectMap(rows + 1, cols), seed=0)


def test_repair_demands_a_single_array_golden():
    with pytest.raises(RepairFallback, match="PnrResult"):
        repair_for_die("not a compile", DefectMap(4, 4))


def test_repair_falls_back_provably_on_a_hopeless_die(rca4_golden):
    rows, cols = golden_shape(rca4_golden)
    dm = DefectMap(
        rows, cols,
        dead_cells=[(r, c) for r in range(rows) for c in range(cols)],
    )
    with pytest.raises(RepairFallback):
        repair_for_die(rca4_golden, dm, seed=0)


# ---------------------------------------------------------------------------
# The property: repair never silently degrades
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    die_seed=st.integers(min_value=0, max_value=10_000),
    density=st.sampled_from([0.0005, 0.002, 0.008, 0.02]),
)
def test_repair_contract_holds_for_random_dies(rca4_golden, die_seed, density):
    """For any die: an equivalent clean artifact, or a provable fallback.

    Sweeps defect densities from light (warm repair trivially wins) to
    heavy (fallback territory).  Whatever the die, the outcome is one
    of exactly two things — a repaired result that verifies on both
    backends, touches no dead resource and is deterministic, or a
    :class:`RepairFallback` whose cold defect-aware escalation itself
    either compiles cleanly or raises.  There is no third, silent
    outcome.
    """
    dm = sample_defect_map(
        *golden_shape(rca4_golden),
        cell_fail=density,
        wire_fail=0.4 * density,
        stuck_fail=0.4 * density,
        seed=die_seed,
    )
    try:
        repaired = repair_for_die(rca4_golden, dm, seed=0)
    except RepairFallback:
        try:
            cold = compile_to_fabric(
                ripple_carry_netlist(4), defect_map=dm, seed=0,
                workers=0, max_attempts=3,
            )
        except PnrError:
            return  # the die is provably unusable, reported loudly
        verify_equivalence(cold, n_vectors=32, event_vectors=1)
        assert_defect_clean(cold.array, dm)
        return
    verify_equivalence(repaired, n_vectors=32, event_vectors=1)
    assert_defect_clean(repaired.array, dm)
    again = repair_for_die(rca4_golden, dm, seed=0)
    assert np.array_equal(repaired.to_bitstream(), again.to_bitstream())
