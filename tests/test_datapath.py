"""Integration tests: adder and accumulator datapaths on the fabric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datapath.accumulator import Accumulator
from repro.datapath.adder import RippleCarryAdder
from repro.datapath.bitserial import (
    BitSerialAdder,
    bit_serial_timing,
    crossover_width,
    ripple_timing,
)
from repro.util.technology import node


class TestRippleCarryAdder:
    def test_exhaustive_2bit(self):
        adder = RippleCarryAdder(2)
        for a in range(4):
            for b in range(4):
                for cin in (0, 1):
                    assert adder.add(a, b, cin) == a + b + cin, (a, b, cin)

    def test_4bit_cases(self):
        adder = RippleCarryAdder(4)
        for a, b in [(0, 0), (15, 15), (9, 6), (7, 8), (15, 1)]:
            assert adder.add(a, b) == a + b

    def test_carry_propagates_full_length(self):
        adder = RippleCarryAdder(6)
        # 111111 + 1: the worst-case ripple.
        assert adder.add(63, 1) == 64

    @given(a=st.integers(0, 255), b=st.integers(0, 255), cin=st.integers(0, 1))
    @settings(max_examples=12, deadline=None)
    def test_random_8bit(self, a, b, cin):
        adder = RippleCarryAdder(8)
        assert adder.add(a, b, cin) == a + b + cin

    def test_cells_per_bit(self):
        # Paper Fig. 10: one 6-NAND cell pair per bit carries the adder's
        # five terms; our mapping adds a third cell for sum collection and
        # carry forwarding (see EXPERIMENTS.md E8).
        adder = RippleCarryAdder(4)
        assert adder.cells_used() == 4 * RippleCarryAdder.CELLS_PER_BIT

    def test_operand_range_checked(self):
        adder = RippleCarryAdder(2)
        with pytest.raises(ValueError):
            adder.add(4, 0)
        with pytest.raises(ValueError):
            adder.add(0, 0, cin=2)

    def test_width_validated(self):
        with pytest.raises(ValueError):
            RippleCarryAdder(0)


class TestAccumulator:
    def test_accumulates_sequence(self):
        acc = Accumulator(4)
        acc.reset()
        assert acc.value() == 0
        assert acc.accumulate(3) == 3
        assert acc.accumulate(5) == 8
        assert acc.accumulate(1) == 9

    def test_wraps_modulo_width(self):
        acc = Accumulator(3)
        acc.reset()
        acc.accumulate(7)
        assert acc.accumulate(2) == 1  # 9 mod 8

    def test_reset_mid_stream(self):
        acc = Accumulator(4)
        acc.reset()
        acc.accumulate(6)
        acc.reset()
        assert acc.value() == 0
        assert acc.accumulate(2) == 2

    def test_operand_change_without_clock_is_invisible(self):
        acc = Accumulator(4)
        acc.reset()
        acc.accumulate(4)
        acc.set_operand(9)  # no clock pulse
        assert acc.value() == 4

    def test_cells_per_bit_accounting(self):
        acc = Accumulator(2)
        # 3 adder cells + 2 DFF cells per bit.
        assert acc.cells_per_bit() == pytest.approx(5.0)


class TestBitSerial:
    @given(a=st.integers(0, 2**12 - 1), b=st.integers(0, 2**12 - 1))
    @settings(max_examples=60, deadline=None)
    def test_serial_add_matches_integers(self, a, b):
        assert BitSerialAdder().add(a, b, 12) == a + b

    def test_cycle_count(self):
        adder = BitSerialAdder()
        adder.add(5, 3, 8)
        assert adder.cycles == 8

    def test_bit_validation(self):
        with pytest.raises(ValueError):
            BitSerialAdder().step(2, 0)

    def test_operand_fit_checked(self):
        with pytest.raises(ValueError):
            BitSerialAdder().add(9, 0, 3)


class TestSerialVsParallelTiming:
    def test_ripple_grows_superlinearly(self):
        n = node("65nm")
        t8 = ripple_timing(8, n).total_ps
        t64 = ripple_timing(64, n).total_ps
        assert t64 > 8 * t8  # the quadratic wire term bites

    def test_serial_cycle_width_independent(self):
        n = node("65nm")
        assert bit_serial_timing(8, n).cycle_ps == bit_serial_timing(64, n).cycle_ps

    def test_crossover_exists_and_shrinks_with_scaling(self):
        # The paper's Section 4 claim: as wires get worse, serial wins at
        # ever-smaller operand widths.
        w250 = crossover_width(node("250nm"))
        w22 = crossover_width(node("22nm"))
        assert w250 is not None and w22 is not None
        assert w22 < w250

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ripple_timing(0, node("65nm"))
