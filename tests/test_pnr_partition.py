"""Tests for multi-array sharding (`repro.pnr.partition`).

Partition invariants (acyclic shard graph, cut-net accounting, balance),
the edge cases the sharded flow must survive (single-shard degenerate
compiles, cut nets fanning into several shards, stateful pairs staying
intact inside one shard, per-shard bitstream round trips), staged
simulation stitching, and the headline acceptance: a design deeper than
one array's ``rows + cols - 1`` bound compiling across two or more
`CellArray` chiplets and verifying equivalent to its source netlist on
both simulation backends.
"""

import numpy as np
import pytest

from repro.datapath.adder import ripple_carry_netlist
from repro.fabric import CHANNEL_DELAY, CellArray, InterArrayChannel
from repro.fabric.channel import ChannelError
from repro.netlist import (
    BatchBackend,
    EventBackend,
    Netlist,
    ShardStage,
    evaluate_staged,
)
from repro.pnr import (
    PartitionError,
    PnrError,
    ShardedPnrResult,
    VerificationError,
    compile_sharded,
    compile_to_fabric,
    map_netlist,
    partition_design,
)
from repro.sim.values import ONE, ZERO


def not_chain(n: int, name: str = "chain") -> Netlist:
    """A chain of n NOT gates — depth n + 1 with its output buffer."""
    nl = Netlist(name)
    prev = nl.add_input("a")
    for k in range(n):
        prev = nl.add("not", f"g{k}", [prev], f"n{k}")
    nl.add("buf", "out", [prev], nl.add_output("y"))
    return nl


def tapped_chain() -> Netlist:
    """A chain whose head net is re-read far downstream (multi-shard fan-out)."""
    nl = Netlist("tapped")
    a = nl.add_input("a")
    head = nl.add("not", "head", [a], "x")
    prev = head
    for k in range(24):
        prev = nl.add("not", f"c{k}", [prev], f"n{k}")
        if k in (11, 23):
            nl.add("and", f"tap{k}", [head, prev], nl.add_output(f"t{k}"))
    nl.add("buf", "out", [prev], nl.add_output("y"))
    return nl


class TestPartition:
    def test_invariants_on_rca8(self):
        design = map_netlist(ripple_carry_netlist(8))
        part = partition_design(design, 3)
        # Every gate assigned, every shard populated.
        assert set(part.assignment) == set(design.gates)
        assert all(s.gates for s in part.shards)
        assert sum(len(s.gates) for s in part.shards) == design.n_gates
        # The shard graph is acyclic: nets only cross forward.
        for g in design.gates.values():
            for net in g.inputs:
                src = design.source_of.get(net)
                if src is not None:
                    assert part.assignment[src] <= part.assignment[g.name]
        # cut_nets matches a naive recount.
        naive = {}
        for net, sinks in design.sinks_of.items():
            src = design.source_of.get(net)
            if src is None:
                continue
            crossing = sorted(
                {part.assignment[g] for g, _ in sinks}
                - {part.assignment[src]}
            )
            if crossing:
                naive[net] = (part.assignment[src], tuple(crossing))
        assert part.cut_nets == naive
        assert part.cut_size == sum(len(s) for _, s in naive.values())

    def test_refinement_never_widens_the_cut(self):
        design = map_netlist(ripple_carry_netlist(8))
        for n in (2, 3, 4):
            plain = partition_design(design, n, refine=False)
            refined = partition_design(design, n, refine=True)
            assert refined.cut_size <= plain.cut_size

    def test_shard_ports_cover_cut_nets(self):
        design = map_netlist(ripple_carry_netlist(8))
        part = partition_design(design, 3)
        for net, (src, sinks) in part.cut_nets.items():
            assert net in part.shards[src].outputs
            for t in sinks:
                assert net in part.shards[t].inputs

    def test_too_many_shards_rejected(self):
        design = map_netlist(not_chain(3))
        with pytest.raises(PartitionError):
            partition_design(design, design.n_gates + 1)
        with pytest.raises(PartitionError):
            partition_design(design, 0)


class TestShardedFlow:
    def test_single_shard_degenerate(self):
        res = compile_sharded(ripple_carry_netlist(4), n_shards=1, seed=0)
        assert isinstance(res, ShardedPnrResult)
        assert res.n_shards == 1 and res.channels == []
        assert res.stats.cut_nets == 0 and res.stats.cut_size == 0
        report = res.verify(n_vectors=128, event_vectors=2)
        assert report["ok"] and report["shards"] == 1

    def test_deeper_than_one_array_compiles_across_chiplets(self):
        """Acceptance: depth 31 > 2*8 - 1, impossible on one 8x8 array."""
        nl = not_chain(30, "deep")
        with pytest.raises(PnrError):
            compile_to_fabric(nl, CellArray(8, 8), seed=0)
        res = compile_sharded(nl, max_side=8, seed=0)
        assert res.n_shards >= 2
        assert all(a.n_rows <= 8 and a.n_cols <= 8 for a in res.arrays)
        # Both backends agree with the source netlist.
        report = res.verify(n_vectors=128, event_vectors=4)
        assert report["ok"] and report["vectors_event"] == 4

    def test_rca16_sharded_acceptance(self):
        res = compile_sharded(ripple_carry_netlist(16), max_side=24, seed=0)
        assert res.n_shards >= 2
        assert res.stats.cut_nets == len(res.channels) > 0
        assert res.verify(n_vectors=256, event_vectors=2)["ok"]

    def test_auto_stays_single_when_it_fits(self):
        res = compile_sharded(ripple_carry_netlist(2), max_side=32, seed=0)
        assert res.n_shards == 1

    def test_compile_to_fabric_delegates(self):
        res = compile_to_fabric(not_chain(8), shards=2, seed=0)
        assert isinstance(res, ShardedPnrResult) and res.n_shards == 2
        with pytest.raises(PnrError):
            compile_to_fabric(not_chain(8), CellArray(12, 12), shards=2)

    def test_cut_net_fans_out_into_multiple_shards(self):
        # refine=False pins the level-chunked seed, where the head net
        # provably reaches taps in two later shards (the min-cut pass
        # would legally shrink this particular cut by migrating a tap).
        res = compile_sharded(tapped_chain(), n_shards=3, seed=0, refine=False)
        fan = [ch for ch in res.channels if len(ch.sink_shards) >= 2]
        assert fan, "expected a channel feeding at least two shards"
        ch = fan[0]
        assert set(ch.sink_wires) == set(ch.sink_shards)
        assert ch.source_wire in res.shards[ch.source_shard].output_wires.values()
        assert res.verify(n_vectors=128, event_vectors=2)["ok"]

    def test_channels_are_forward_only(self):
        res = compile_sharded(ripple_carry_netlist(8), n_shards=3, seed=0)
        for ch in res.channels:
            assert all(t > ch.source_shard for t in ch.sink_shards)
            assert ch.delay == CHANNEL_DELAY
            assert ch.source_cell is not None

    def test_gateless_passthrough_design(self):
        nl = Netlist("wire_only")
        nl.add_input("a")
        nl.add_output("a")
        res = compile_sharded(nl, max_side=8, seed=0)
        assert res.n_shards == 1 and res.channels == []
        got = res.evaluate_batch({"a": np.array([1, 0, 1], dtype=np.uint8)})
        assert got["a"].tolist() == [1, 0, 1]

    def test_input_passthrough_output(self):
        nl = not_chain(8, "pass")
        nl.add_output("a")  # declared output driven by nothing: passthrough
        res = compile_sharded(nl, n_shards=2, seed=0)
        got = res.evaluate_batch({"a": np.array([0, 1, 1, 0], dtype=np.uint8)})
        assert got["a"].tolist() == [0, 1, 1, 0]
        assert res.verify(n_vectors=64, event_vectors=2)["ok"]

    def test_shard_bitstream_round_trip(self):
        res = compile_sharded(ripple_carry_netlist(8), n_shards=2, seed=0)
        rng = np.random.default_rng(7)
        stimuli = {
            n: rng.integers(0, 2, 64, dtype=np.uint8)
            for n in res.design.inputs
        }
        expected = res.evaluate_batch(stimuli)
        rebuilt_stages = []
        for shard, stage in zip(res.shards, res.stages()):
            clone = CellArray.from_bitstream(shard.to_bitstream())
            assert np.array_equal(clone.to_bitstream(), shard.to_bitstream())
            rebuilt_stages.append(
                ShardStage(
                    netlist=clone.to_netlist().netlist,
                    input_map=stage.input_map,
                    output_map=stage.output_map,
                )
            )
        got = evaluate_staged(
            rebuilt_stages, stimuli, outputs=list(expected),
            backend=BatchBackend(),
        )
        for net, vals in expected.items():
            assert np.array_equal(vals, got[net]), net
        assert len(res.to_bitstreams()) == res.n_shards


class TestStatefulSharding:
    def celement_chain(self) -> Netlist:
        nl = Netlist("cchain")
        a, b = nl.add_input("a"), nl.add_input("b")
        prev = nl.add("celement", "ce", [a, b], "c")
        for k in range(10):
            prev = nl.add("not", f"g{k}", [prev], f"n{k}")
        nl.add("buf", "out", [prev], nl.add_output("y"))
        return nl

    def test_pair_kept_intact_within_one_shard(self):
        res = compile_sharded(self.celement_chain(), n_shards=2, seed=0)
        pair_shards = [
            res.partition.assignment[g.name]
            for g in res.design.gates.values()
            if g.is_stateful
        ]
        assert len(pair_shards) == 1  # the pair is one indivisible gate
        host = res.shards[pair_shards[0]]
        pair = next(g for g in host.design.gates.values() if g.is_stateful)
        (r0, c0), (r1, c1) = host.placement.cells_of(pair)
        assert (r1, c1) == (r0, c0 + 1)  # two horizontally abutted cells
        assert not host.array.cell(r0, c0).is_blank()
        assert not host.array.cell(r1, c1).is_blank()

    def test_sharded_celement_sequence_on_event_backend(self):
        res = compile_sharded(self.celement_chain(), n_shards=2, seed=0)
        with pytest.raises(VerificationError):
            res.verify()  # random vectors are meaningless for state
        sim = EventBackend().elaborate(res.to_netlist())
        for name in res.to_netlist().free_inputs():
            if name not in ("a", "b"):
                sim.drive(name, ZERO)
        for a, b, want in ((1, 1, 1), (0, 1, 1), (0, 0, 0), (1, 0, 0)):
            sim.drive("a", a)
            sim.drive("b", b)
            sim.run_to_quiescence(max_time=sim.now + 10_000)
            assert sim.value("y") == (ONE if want else ZERO), (a, b)


class TestSystemTiming:
    def test_critical_path_crosses_channels(self):
        res = compile_sharded(not_chain(16), n_shards=2, seed=0)
        t = res.timing
        assert t.mode == "sharded"
        kinds = [s.kind for s in t.critical_path]
        assert "channel" in kinds
        chan = next(s for s in t.critical_path if s.kind == "channel")
        assert chan.delay == CHANNEL_DELAY
        # Arrivals grow monotonically along the stitched path and end at
        # the system cycle time.
        arrivals = [s.arrival for s in t.critical_path]
        assert arrivals == sorted(arrivals)
        assert t.critical_path[-1].arrival == t.cycle_time

    def test_system_cycle_bounds_each_shard(self):
        res = compile_sharded(ripple_carry_netlist(8), n_shards=2, seed=0)
        t = res.timing
        assert t.cycle_time >= max(s.stats.cycle_time for s in res.shards)
        assert t.cycle_time >= t.logic_delay > 0
        assert t.worst_slack == t.target_period - t.cycle_time

    def test_per_net_maps_are_system_global(self):
        """Every net of a single chain lies on the one true critical path,
        so path_through/slack/criticality must reflect the *system* cycle
        even for nets whose shard is far upstream of the endpoint."""
        res = compile_sharded(not_chain(12), n_shards=3, seed=0)
        t = res.timing
        gate_nets = set(res.design.source_of) | set(res.design.inputs)
        for net in gate_nets:
            assert t.path_through[net] == t.cycle_time, net
            assert t.slacks[net] == t.worst_slack, net
            assert t.criticality[net] == 1.0, net

    def test_sta_bounds_event_settle_of_merged_netlist(self):
        res = compile_sharded(not_chain(16), n_shards=2, seed=0)
        merged = res.to_netlist()
        # The merged netlist adds a 1-unit observation buffer per
        # declared output on top of the composed STA.
        bound = res.timing.cycle_time + len(res.design.outputs)
        assert merged.arrival_times()["y"] <= bound


class TestStagedEvaluation:
    def test_values_stitch_between_stages(self):
        first = Netlist("first")
        first.add("not", "inv", [first.add_input("p")], first.add_output("q"))
        second = Netlist("second")
        second.add("not", "inv", [second.add_input("r")], second.add_output("s"))
        stages = [
            ShardStage(first, {"x": "p"}, {"mid": "q"}),
            ShardStage(second, {"mid": "r"}, {"y": "s"}),
        ]
        got = evaluate_staged(stages, {"x": [0, 1, 0, 1]})
        assert got["y"].tolist() == [0, 1, 0, 1]  # double inversion
        assert got["mid"].tolist() == [1, 0, 1, 0]

    def test_missing_dependency_raises(self):
        from repro.netlist import BackendError

        only = Netlist("only")
        only.add("not", "inv", [only.add_input("p")], only.add_output("q"))
        stages = [ShardStage(only, {"nowhere": "p"}, {"q": "q"})]
        with pytest.raises(BackendError):
            evaluate_staged(stages, {"x": [0, 1]})


class TestChannelModel:
    def test_backward_channel_rejected(self):
        with pytest.raises(ChannelError):
            InterArrayChannel(
                net="n", source_shard=1, sink_shards=(0,),
                source_wire="w[0][0][0]",
            )

    def test_sink_wires_must_match_sinks(self):
        with pytest.raises(ChannelError):
            InterArrayChannel(
                net="n", source_shard=0, sink_shards=(1,),
                source_wire="w[0][0][0]", sink_wires={2: "w[1][0][0]"},
            )
