"""Unit tests for hazard-free covers and the fundamental-mode stepper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.asyncfsm import (
    FlowTable,
    c_element_table,
    count_sic_hazards,
    d_latch_table,
    dff_master_table,
    dff_slave_table,
    ecse_table,
    hazard_free_cover,
)
from repro.synth.qm import cover_is_correct, minimise
from repro.synth.truthtable import TruthTable


class TestHazardFreeCover:
    def test_latch_gets_consensus_term(self):
        # The classic example: minimal q+ = G.D + G'.q has a static-1
        # hazard on the G transition with D=q=1; the hazard-free cover
        # must include the consensus D.q.
        t = d_latch_table()
        minimal = minimise(t)
        hf = hazard_free_cover(t)
        assert count_sic_hazards(t, minimal) > 0
        assert count_sic_hazards(t, hf) == 0
        assert len(hf) >= len(minimal)

    def test_cover_still_exact(self):
        for t in (d_latch_table(), dff_master_table(), dff_slave_table(), ecse_table()):
            assert cover_is_correct(t, hazard_free_cover(t))

    def test_c_element_already_hazard_free(self):
        t = c_element_table()
        assert count_sic_hazards(t, hazard_free_cover(t)) == 0

    @given(seed=st.integers(0, 100_000), n=st.integers(2, 4))
    @settings(max_examples=80, deadline=None)
    def test_random_functions_hazard_free_and_exact(self, seed, n):
        t = TruthTable.random(n, np.random.default_rng(seed))
        hf = hazard_free_cover(t)
        assert cover_is_correct(t, hf)
        assert count_sic_hazards(t, hf) == 0

    def test_storage_equations_fit_cell_pair(self):
        # The macros depend on every storage equation fitting the pair's
        # six product rows after hazard-freeing.
        assert len(hazard_free_cover(d_latch_table())) <= 6
        assert len(hazard_free_cover(dff_master_table())) <= 6
        assert len(hazard_free_cover(ecse_table())) <= 6


class TestFlowTable:
    def make_dff(self) -> FlowTable:
        # Variables: D (in0), C (in1), then state m, q.
        # m+ = C'.D + C.m + D.m over (D, C, m); extend to (D, C, m, q).
        m_next = TruthTable.from_function(
            4, lambda d, c, m, q: ((not c) and d) or (c and m) or (d and m)
        )
        q_next = TruthTable.from_function(
            4, lambda d, c, m, q: (c and m) or ((not c) and q) or (m and q)
        )
        return FlowTable(n_inputs=2, next_state=(m_next, q_next))

    def test_stability_detection(self):
        ft = self.make_dff()
        assert ft.is_stable((0, 0), (0, 0))
        assert not ft.is_stable((1, 0), (0, 0))  # master wants to load 1

    def test_settle_loads_master_when_clock_low(self):
        ft = self.make_dff()
        state = ft.settle((1, 0), (0, 0))
        assert state == (1, 0)  # m follows D, q unchanged

    def test_rising_edge_transfers(self):
        ft = self.make_dff()
        state = ft.settle((1, 0), (0, 0))  # load master
        state = ft.settle((1, 1), state)  # clock rises
        assert state == (1, 1)  # q took the captured value

    def test_data_change_while_high_ignored(self):
        ft = self.make_dff()
        state = ft.settle((1, 0), (0, 0))
        state = ft.settle((1, 1), state)
        state = ft.settle((0, 1), state)  # D drops while clock high
        assert state == (1, 1)  # q holds; m holds

    def test_full_clock_cycle_sequence(self):
        ft = self.make_dff()
        state = (0, 0)
        for d, expect_q in [(1, 1), (0, 0), (1, 1), (1, 1)]:
            state = ft.settle((d, 0), state)  # clock low: load master
            state = ft.settle((d, 1), state)  # rising edge: transfer
            assert state[1] == expect_q

    def test_no_critical_race_in_dff(self):
        ft = self.make_dff()
        for d in (0, 1):
            for c in (0, 1):
                for m in (0, 1):
                    for q in (0, 1):
                        assert not ft.has_critical_race((d, c), (m, q))

    def test_oscillating_machine_detected(self):
        # next = NOT state: never settles.
        t = TruthTable.from_function(1, lambda s: not s)
        ft = FlowTable(n_inputs=0, next_state=(t,))
        with pytest.raises(RuntimeError, match="settle"):
            ft.settle((), (0,))

    def test_arity_validation(self):
        t = TruthTable.constant(2, 0)
        with pytest.raises(ValueError):
            FlowTable(n_inputs=2, next_state=(t,))  # needs 3 vars

    def test_excite_arity_checked(self):
        ft = self.make_dff()
        with pytest.raises(ValueError):
            ft.excite((0,), (0, 0))
