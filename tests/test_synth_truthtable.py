"""Unit tests for the truth-table representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.truthtable import TruthTable


class TestConstruction:
    def test_from_minterms(self):
        t = TruthTable.from_minterms(2, [1, 2])  # XOR
        assert t.outputs.tolist() == [0, 1, 1, 0]

    def test_minterm_range_checked(self):
        with pytest.raises(ValueError):
            TruthTable.from_minterms(2, [4])

    def test_from_function(self):
        t = TruthTable.from_function(3, lambda a, b, c: a and b and not c)
        assert t.minterms() == [3]  # a=1, b=1, c=0 -> index 0b011

    def test_constant(self):
        assert TruthTable.constant(2, 1).count_ones() == 4
        assert TruthTable.constant(2, 0).count_ones() == 0

    def test_projection(self):
        t = TruthTable.projection(3, 1)
        for idx in range(8):
            assert t.outputs[idx] == (idx >> 1) & 1

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            TruthTable(2, [0, 1])
        with pytest.raises(ValueError):
            TruthTable(1, [0, 2])

    def test_outputs_immutable(self):
        t = TruthTable.constant(1, 0)
        with pytest.raises(ValueError):
            t.outputs[0] = 1


class TestEvaluation:
    def test_evaluate_lsb_first(self):
        t = TruthTable.from_minterms(3, [5])  # x0=1, x1=0, x2=1
        assert t.evaluate([1, 0, 1]) == 1
        assert t.evaluate([1, 0, 0]) == 0

    def test_evaluate_arity_checked(self):
        with pytest.raises(ValueError):
            TruthTable.constant(2, 0).evaluate([0])

    def test_evaluate_indices_vectorised(self):
        t = TruthTable.from_minterms(2, [0, 3])
        np.testing.assert_array_equal(t.evaluate_indices([0, 1, 2, 3]), [1, 0, 0, 1])


class TestAlgebra:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_de_morgan(self, seed):
        rng = np.random.default_rng(seed)
        f = TruthTable.random(3, rng)
        g = TruthTable.random(3, rng)
        assert ~(f & g) == (~f | ~g)
        assert ~(f | g) == (~f & ~g)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_xor_identity(self, seed):
        rng = np.random.default_rng(seed)
        f = TruthTable.random(3, rng)
        assert (f ^ f) == TruthTable.constant(3, 0)
        assert (f ^ TruthTable.constant(3, 0)) == f

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.constant(2, 0) & TruthTable.constant(3, 0)

    def test_hashable(self):
        a = TruthTable.from_minterms(2, [1])
        b = TruthTable.from_minterms(2, [1])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestCofactors:
    def test_shannon_expansion(self):
        rng = np.random.default_rng(7)
        f = TruthTable.random(3, rng)
        for var in range(3):
            f0 = f.cofactor(var, 0)
            f1 = f.cofactor(var, 1)
            # Rebuild: f = x'.f0 + x.f1, checked pointwise.
            for idx in range(8):
                bit = (idx >> var) & 1
                low = idx & ((1 << var) - 1)
                high = (idx >> (var + 1)) << var
                sub = high | low
                expect = f1.outputs[sub] if bit else f0.outputs[sub]
                assert f.outputs[idx] == expect

    def test_support_of_projection(self):
        t = TruthTable.projection(4, 2)
        assert t.support() == [2]

    def test_support_of_constant_empty(self):
        assert TruthTable.constant(3, 1).support() == []

    def test_depends_on_xor(self):
        t = TruthTable.from_function(2, lambda a, b: a ^ b)
        assert t.depends_on(0) and t.depends_on(1)
