"""Unit tests for the truth-table representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.truthtable import TruthTable


class TestConstruction:
    def test_from_minterms(self):
        t = TruthTable.from_minterms(2, [1, 2])  # XOR
        assert t.outputs.tolist() == [0, 1, 1, 0]

    def test_minterm_range_checked(self):
        with pytest.raises(ValueError):
            TruthTable.from_minterms(2, [4])

    def test_from_function(self):
        t = TruthTable.from_function(3, lambda a, b, c: a and b and not c)
        assert t.minterms() == [3]  # a=1, b=1, c=0 -> index 0b011

    def test_constant(self):
        assert TruthTable.constant(2, 1).count_ones() == 4
        assert TruthTable.constant(2, 0).count_ones() == 0

    def test_projection(self):
        t = TruthTable.projection(3, 1)
        for idx in range(8):
            assert t.outputs[idx] == (idx >> 1) & 1

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            TruthTable(2, [0, 1])
        with pytest.raises(ValueError):
            TruthTable(1, [0, 2])

    def test_outputs_immutable(self):
        t = TruthTable.constant(1, 0)
        with pytest.raises(ValueError):
            t.outputs[0] = 1


class TestEvaluation:
    def test_evaluate_lsb_first(self):
        t = TruthTable.from_minterms(3, [5])  # x0=1, x1=0, x2=1
        assert t.evaluate([1, 0, 1]) == 1
        assert t.evaluate([1, 0, 0]) == 0

    def test_evaluate_arity_checked(self):
        with pytest.raises(ValueError):
            TruthTable.constant(2, 0).evaluate([0])

    def test_evaluate_indices_vectorised(self):
        t = TruthTable.from_minterms(2, [0, 3])
        np.testing.assert_array_equal(t.evaluate_indices([0, 1, 2, 3]), [1, 0, 0, 1])


class TestAlgebra:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_de_morgan(self, seed):
        rng = np.random.default_rng(seed)
        f = TruthTable.random(3, rng)
        g = TruthTable.random(3, rng)
        assert ~(f & g) == (~f | ~g)
        assert ~(f | g) == (~f & ~g)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_xor_identity(self, seed):
        rng = np.random.default_rng(seed)
        f = TruthTable.random(3, rng)
        assert (f ^ f) == TruthTable.constant(3, 0)
        assert (f ^ TruthTable.constant(3, 0)) == f

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.constant(2, 0) & TruthTable.constant(3, 0)

    def test_hashable(self):
        a = TruthTable.from_minterms(2, [1])
        b = TruthTable.from_minterms(2, [1])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestCofactors:
    def test_shannon_expansion(self):
        rng = np.random.default_rng(7)
        f = TruthTable.random(3, rng)
        for var in range(3):
            f0 = f.cofactor(var, 0)
            f1 = f.cofactor(var, 1)
            # Rebuild: f = x'.f0 + x.f1, checked pointwise.
            for idx in range(8):
                bit = (idx >> var) & 1
                low = idx & ((1 << var) - 1)
                high = (idx >> (var + 1)) << var
                sub = high | low
                expect = f1.outputs[sub] if bit else f0.outputs[sub]
                assert f.outputs[idx] == expect

    def test_support_of_projection(self):
        t = TruthTable.projection(4, 2)
        assert t.support() == [2]

    def test_support_of_constant_empty(self):
        assert TruthTable.constant(3, 1).support() == []

    def test_depends_on_xor(self):
        t = TruthTable.from_function(2, lambda a, b: a ^ b)
        assert t.depends_on(0) and t.depends_on(1)


class TestNetlistExtraction:
    def test_lut_pair_truth_table_recovered(self):
        import numpy as np

        from repro.synth.macros import lut_pair_from_table, macro_netlist

        rng = np.random.default_rng(11)
        want = TruthTable.random(2, rng)
        nl, ins, outs = macro_netlist(lut_pair_from_table(want))
        # Extract over the complemented-column convention: 4 physical
        # wires, of which only the complement-consistent rows are legal.
        got = TruthTable.from_netlist(
            nl,
            [ins["x0"], ins["x0_n"], ins["x1"], ins["x1_n"]],
            outs["f"],
        )
        for a in (0, 1):
            for b in (0, 1):
                idx = a | ((1 - a) << 1) | (b << 2) | ((1 - b) << 3)
                assert got.outputs[idx] == want.evaluate([a, b])

    def test_backends_extract_identically(self):
        from repro.netlist import BatchBackend, EventBackend
        from repro.synth.macros import complement_cell, macro_netlist

        nl, ins, outs = macro_netlist(complement_cell(1))
        tables = [
            TruthTable.from_netlist(nl, [ins["x0"]], outs["x0_n"], backend=be)
            for be in (BatchBackend(), EventBackend())
        ]
        assert tables[0] == tables[1]
        assert tables[0] == TruthTable.from_function(1, lambda a: not a)

    def test_too_many_inputs_rejected(self):
        from repro.netlist import Netlist

        nl = Netlist()
        with pytest.raises(ValueError, match="up to 16"):
            TruthTable.from_netlist(nl, [f"i{k}" for k in range(17)], "y")
