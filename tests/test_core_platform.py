"""Tests for the high-level platform API and experiment reports."""

import pytest

from repro.core.platform import PolymorphicPlatform
from repro.core.report import ExperimentReport
from repro.sim.values import ONE
from repro.synth.macros import complement_cell, lut_pair_from_table
from repro.synth.route import grid_route, routing_cost, straight_channel
from repro.synth.truthtable import TruthTable


class TestPlatform:
    def test_place_compile_and_run(self):
        p = PolymorphicPlatform(1, 2)
        placed = p.place(complement_cell(1), 0, 0)
        p.drive_bit(placed.inputs["x0"], 1)
        p.settle()
        assert p.bit(placed.outputs["x0"]) == 1
        assert p.bit(placed.outputs["x0_n"]) == 0

    def test_config_frozen_after_compile(self):
        p = PolymorphicPlatform(1, 2)
        p.place(complement_cell(1), 0, 0)
        p.compile()
        with pytest.raises(RuntimeError, match="frozen"):
            p.place(complement_cell(1), 0, 1)

    def test_connect_folded_route(self):
        p = PolymorphicPlatform(1, 2)
        placed = p.place(complement_cell(1), 0, 0)
        # Fold the complemented output back onto a free wire.
        p.connect(placed.outputs["x0_n"], "w[0][0][5]")
        p.drive_bit(placed.inputs["x0"], 0)
        p.settle()
        assert p.value("w[0][0][5]") == ONE
        assert p.stats().folded_routes == 1

    def test_bit_rejects_undefined(self):
        p = PolymorphicPlatform(1, 1)
        p.compile()
        p.settle()
        with pytest.raises(ValueError, match="not a clean bit"):
            p.bit("w[0][0][0]")

    def test_stats_accounting(self):
        p = PolymorphicPlatform(2, 4)
        p.place(complement_cell(2), 0, 0)
        stats = p.stats()
        assert stats.n_cells_used == 1
        assert stats.n_gates > 0
        assert stats.config_bits == 2 * 4 * 128

    def test_bitstream_round_trip_through_platform(self):
        p1 = PolymorphicPlatform(1, 3)
        t = TruthTable.from_function(2, lambda a, b: a ^ b)
        macro = lut_pair_from_table(t)
        p1.place(macro, 0, 0)
        bits = p1.array.to_bitstream()

        p2 = PolymorphicPlatform(1, 3)
        p2.load_bitstream(bits)
        # Drive x0=1, x1=0 with complements; expect XOR = 1.
        p2.drive_bit("w[0][0][0]", 1)
        p2.drive_bit("w[0][0][1]", 0)
        p2.drive_bit("w[0][0][2]", 0)
        p2.drive_bit("w[0][0][3]", 1)
        p2.settle()
        assert p2.bit("w[0][2][0]") == 1

    def test_bitstream_shape_mismatch_rejected(self):
        p1 = PolymorphicPlatform(1, 2)
        bits = p1.array.to_bitstream()
        p2 = PolymorphicPlatform(2, 2)
        with pytest.raises(ValueError, match="shape"):
            p2.load_bitstream(bits)

    def test_traces_capture(self):
        p = PolymorphicPlatform(1, 2)
        placed = p.place(complement_cell(1), 0, 0)
        p.trace(placed.outputs["x0"])
        p.drive_bit(placed.inputs["x0"], 0)
        p.settle()
        p.drive_bit(placed.inputs["x0"], 1)
        p.settle()
        wave = p.traces()[placed.outputs["x0"]]
        assert wave.rising_edges()


class TestRouting:
    def test_straight_channel(self):
        from repro.fabric.array import CellArray, wire_name

        arr = CellArray(1, 5)
        straight_channel(arr, 0, 0, 5, lines=[2])
        sim = arr.compile_into().sim
        sim.drive(wire_name(0, 0, 2), ONE)
        sim.run(until=80)
        assert sim.value(wire_name(0, 5, 2)) == ONE

    def test_channel_refuses_to_clobber(self):
        from repro.fabric.array import CellArray

        arr = CellArray(1, 3)
        straight_channel(arr, 0, 0, 2, lines=[0])
        with pytest.raises(ValueError, match="refusing"):
            straight_channel(arr, 0, 1, 3, lines=[1])

    def test_channel_rejects_out_of_range_lines(self):
        from repro.fabric.array import CellArray

        arr = CellArray(1, 3)
        # A clear, early error — not a failure deep inside CellConfig.
        with pytest.raises(ValueError, match="line index must be 0..5"):
            straight_channel(arr, 0, 0, 2, lines=[6])
        with pytest.raises(ValueError, match="line index must be 0..5"):
            straight_channel(arr, 0, 0, 2, lines=[-1])
        with pytest.raises(ValueError, match="duplicate line"):
            straight_channel(arr, 0, 0, 2, lines=[1, 1])
        # Nothing was configured by the failed calls.
        assert all(arr.cell(0, c).is_blank() for c in range(3))

    def test_grid_route_rejects_out_of_range_line(self):
        from repro.fabric.array import CellArray

        arr = CellArray(2, 2)
        with pytest.raises(ValueError, match="line index must be 0..5"):
            grid_route(arr, (0, 0), (1, 1), line=7)

    def test_grid_route_l_shape(self):
        from repro.fabric.array import CellArray, wire_name

        arr = CellArray(3, 3)
        path = grid_route(arr, (0, 0), (2, 2), line=1)
        assert path[0] == (0, 0) and path[-1] == (2, 2)
        sim = arr.compile_into().sim
        sim.drive(wire_name(0, 0, 1), ONE)
        sim.run(until=120)
        # The destination cell's input wire carries the routed value.
        assert sim.value(wire_name(2, 2, 1)) == ONE

    def test_route_rejects_backwards(self):
        from repro.fabric.array import CellArray

        arr = CellArray(2, 2)
        with pytest.raises(ValueError, match="east/north"):
            grid_route(arr, (1, 1), (0, 0), line=0)

    def test_route_blocked_by_logic(self):
        from repro.fabric.array import CellArray

        arr = CellArray(1, 3)
        straight_channel(arr, 0, 1, 2, lines=[0])  # occupy the middle
        with pytest.raises(ValueError, match="no blank"):
            grid_route(arr, (0, 0), (0, 2), line=3)

    def test_routing_cost(self):
        cost = routing_cost([(0, 0), (0, 1), (0, 2)])
        assert cost == {"cells": 2, "leaf_devices": 14}


class TestExperimentReport:
    def test_add_and_render(self):
        rep = ExperimentReport("E0", "smoke")
        rep.add("x", "1", "1")
        rep.add("y", "2", "3", verdict="deviation")
        text = rep.render()
        assert "E0" in text and "deviation" in text
        assert not rep.all_match()

    def test_notes_rendered(self):
        rep = ExperimentReport("E0", "smoke")
        rep.note("caveat text")
        assert "caveat text" in rep.render()
