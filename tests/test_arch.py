"""Unit tests for the architecture analytics (area/bits/wires/scaling/power)."""

import math

import pytest

from repro.arch.area import (
    area_ratio,
    density_cells_per_cm2,
    fpga_area_l2,
    polymorphic_area_l2,
)
from repro.arch.compare import (
    area_claims_report,
    config_bits_report,
    power_claim_report,
    scaling_report,
)
from repro.arch.configbits import (
    CLBModel,
    bits_for_design,
    function_for_function_ratio,
    polymorphic_bits_per_block,
)
from repro.arch.fpga_baseline import FpgaBaseline
from repro.arch.power import clock_power_saving, clock_tree_power_w, config_plane_power_w
from repro.arch.scaling import (
    custom_path,
    fpga_path,
    frequency_scaling_exponent,
    scaling_series,
)
from repro.arch.wires import (
    optimal_repeater_segment_um,
    repeated_delay_ps,
    required_drive_wl,
    unrepeated_delay_ps,
)
from repro.synth.truthtable import TruthTable
from repro.util.technology import node, nodes_descending


class TestArea:
    def test_polymorphic_has_no_overhead_terms(self):
        a = polymorphic_area_l2(10)
        assert a.interconnect_l2 == 0.0 and a.config_l2 == 0.0
        assert a.total_l2 == pytest.approx(10 * 200.0)

    def test_fpga_routing_dominates(self):
        a = fpga_area_l2(4)
        assert a.interconnect_l2 > a.logic_l2
        assert a.config_l2 > a.logic_l2

    def test_three_orders_of_magnitude(self):
        # The paper's headline: cell pair vs conventional 4-LUT.
        ratio = area_ratio(polymorphic_cells=2, fpga_lut4s=1)
        assert 1_000 <= ratio <= 3_000

    def test_density_exceeds_1e9(self):
        assert density_cells_per_cm2(lambda_nm=5.0) > 1e9

    def test_validation(self):
        with pytest.raises(ValueError):
            polymorphic_area_l2(-1)
        with pytest.raises(ValueError):
            fpga_area_l2(1, logic_fraction=0.9, config_fraction=0.5)
        with pytest.raises(ValueError):
            area_ratio(0, 1)


class TestConfigBits:
    def test_frame_is_128(self):
        assert polymorphic_bits_per_block() == 128

    def test_clb_several_hundred(self):
        assert 100 <= CLBModel().bits_per_logic_cell() <= 999

    def test_same_order_ratio(self):
        assert 0.1 <= function_for_function_ratio() <= 10.0

    def test_design_bits_scale_linearly(self):
        assert bits_for_design(10) == 1280

    def test_clb_tile_is_n_luts_worth(self):
        clb = CLBModel()
        assert clb.bits_per_clb() == 4 * clb.bits_per_logic_cell()


class TestWires:
    def test_unrepeated_quadratic(self):
        n = node("90nm")
        assert unrepeated_delay_ps(n, 200.0) == pytest.approx(
            4.0 * unrepeated_delay_ps(n, 100.0)
        )

    def test_repeating_beats_bare_wire_when_long(self):
        n = node("45nm")
        long_um = 20 * optimal_repeater_segment_um(n)
        assert repeated_delay_ps(n, long_um) < unrepeated_delay_ps(n, long_um)

    def test_liu_pai_wall(self):
        # ~100:1 drivers at the 130 nm node for 1 mm under 100 ps.
        wl = required_drive_wl(node("130nm"), 1000.0, 100.0)
        assert math.isinf(wl) or wl > 50

    def test_impossible_target_is_inf(self):
        n = node("22nm")
        assert math.isinf(required_drive_wl(n, 5000.0, 1.0))

    def test_repeater_segment_shrinks_with_scaling(self):
        segs = [optimal_repeater_segment_um(n) for n in nodes_descending()]
        assert segs == sorted(segs, reverse=True)


class TestScaling:
    def test_interconnect_fraction_rises_with_scaling(self):
        fracs = [fpga_path(n).wire_fraction for n in nodes_descending()]
        assert fracs[-1] > fracs[0]
        assert fracs[2] > 0.6  # DSM point: interconnect dominates

    def test_fpga_exponent_near_half(self):
        series = scaling_series()
        lams = [n.lambda_nm for n in nodes_descending()]
        x = frequency_scaling_exponent(series["fpga"], lams)
        assert 0.2 <= x <= 0.7

    def test_gap_to_custom_widens(self):
        ladder = nodes_descending()
        gap_old = custom_path(ladder[0]).frequency_mhz / fpga_path(ladder[0]).frequency_mhz
        gap_new = custom_path(ladder[-1]).frequency_mhz / fpga_path(ladder[-1]).frequency_mhz
        assert gap_new > gap_old

    def test_polymorphic_scales_better_than_fpga(self):
        series = scaling_series()
        lams = [n.lambda_nm for n in nodes_descending()]
        x_poly = frequency_scaling_exponent(series["polymorphic"], lams)
        x_fpga = frequency_scaling_exponent(series["fpga"], lams)
        assert x_poly > x_fpga

    def test_exponent_needs_two_points(self):
        with pytest.raises(ValueError):
            frequency_scaling_exponent([fpga_path(node("90nm"))], [45.0])


class TestPower:
    def test_config_plane_under_100mw_at_1e9(self):
        assert config_plane_power_w(1e9) < 0.1

    def test_power_linear_in_cells(self):
        assert config_plane_power_w(2e9) == pytest.approx(2 * config_plane_power_w(1e9))

    def test_clock_tree_cv2f(self):
        p = clock_tree_power_w(1e6, 2.0, 1.0, 1.0, 1e9)
        assert p == pytest.approx((1e6 * 2e-15 + 1e-9) * 1e9)

    def test_gals_saving_positive_and_bounded(self):
        s = clock_power_saving(n_sinks=1e6, n_domains=16)
        assert 0.0 < s < 1.0

    def test_more_domains_more_saving(self):
        assert clock_power_saving(1e6, 32) > clock_power_saving(1e6, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            config_plane_power_w(-1)
        with pytest.raises(ValueError):
            clock_power_saving(1e6, 0)


class TestFpgaBaseline:
    def test_small_function_one_lut(self):
        base = FpgaBaseline()
        t = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)
        assert base.luts_for_table(t) == 1

    def test_wide_function_needs_tree(self):
        base = FpgaBaseline()
        t = TruthTable.from_function(6, lambda *bits: sum(bits) % 2 == 1)
        assert base.luts_for_table(t) > 1

    def test_ff_rides_free_when_lut_available(self):
        base = FpgaBaseline()
        assert base.cost(n_lut4=4, n_ff=4).area_l2 == base.cost(n_lut4=4).area_l2

    def test_adder_cost_linear(self):
        base = FpgaBaseline()
        assert base.ripple_adder(8).n_lut4 == 2 * base.ripple_adder(4).n_lut4

    def test_fig9_tile_cost(self):
        cost = FpgaBaseline().lut3_with_ff()
        assert cost.n_lut4 == 1 and cost.n_ff == 1


class TestReports:
    def test_all_claims_reproduced(self):
        for rep in (
            area_claims_report(),
            config_bits_report(),
            power_claim_report(),
            scaling_report(),
        ):
            assert rep.all_match(), rep.render()

    def test_render_contains_rows(self):
        text = area_claims_report().render()
        assert "lambda^2" in text and "measured" in text


class TestFunctionalYield:
    @staticmethod
    def _adder_fixture():
        from repro.synth.macros import full_adder_testbench

        return full_adder_testbench()

    def test_fault_free_fabric_is_fully_functional(self):
        from repro.arch.montecarlo import functional_fabric_yield

        nl, stim, golden = self._adder_fixture()
        res = functional_fabric_yield(nl, stim, golden, 0.0, 8)
        assert res.functional_yield == 1.0
        assert res.n_vectors == 8

    def test_yield_decreases_with_fail_probability(self):
        import numpy as np

        from repro.arch.montecarlo import functional_fabric_yield

        nl, stim, golden = self._adder_fixture()
        lo = functional_fabric_yield(
            nl, stim, golden, 0.01, 400, rng=np.random.default_rng(1)
        )
        hi = functional_fabric_yield(
            nl, stim, golden, 0.2, 400, rng=np.random.default_rng(1)
        )
        assert lo.functional_yield > hi.functional_yield

    def test_backends_agree_on_sampled_configs(self):
        import numpy as np

        from repro.arch.montecarlo import functional_fabric_yield
        from repro.netlist import BatchBackend, EventBackend

        nl, stim, golden = self._adder_fixture()
        results = [
            functional_fabric_yield(
                nl, stim, golden, 0.05, 30,
                rng=np.random.default_rng(9), backend=be,
            )
            for be in (BatchBackend(), EventBackend())
        ]
        assert results[0].functional_yield == results[1].functional_yield

    def test_fail_probability_from_margin_model(self):
        from repro.arch.montecarlo import analytic_cell_yield, cell_fail_probability

        assert cell_fail_probability(0.05) == pytest.approx(
            1.0 - analytic_cell_yield(0.05)
        )
