"""Unit tests for the MVRAM and the 128-bit configuration frames."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.bitstream import (
    BitstreamError,
    cell_to_frame,
    crc16,
    decode_array,
    decode_cell,
    encode_array,
    encode_cell,
    frame_to_cell,
)
from repro.fabric.driver import DriverMode
from repro.fabric.mvram import FRAME_BITS, MVRAM, N_CELLS
from repro.fabric.nandcell import (
    CellConfig,
    Direction,
    InputSource,
    LfbPartner,
)


def random_config(rng: np.random.Generator) -> CellConfig:
    """A structurally valid random CellConfig."""
    from repro.fabric.leafcell import LeafState

    cfg = CellConfig()
    for r in range(6):
        cfg.crosspoints[r] = [LeafState(int(rng.integers(0, 3))) for _ in range(6)]
        cfg.drivers[r] = DriverMode(int(rng.integers(0, 4)))
        cfg.directions[r] = Direction(int(rng.integers(0, 2)))
    for c in range(6):
        cfg.input_select[c] = InputSource(int(rng.integers(0, 3)))
    cfg.lfb_partner = LfbPartner(int(rng.integers(0, 3)))
    for k in range(2):
        tap = int(rng.integers(-1, 6))
        cfg.lfb_taps[k] = None if tap < 0 else tap
    return cfg


class TestMVRAM:
    def test_frame_is_128_bits(self):
        # The paper's headline number: an 8x8 multi-valued RAM = 128 bits.
        assert FRAME_BITS == 128
        assert MVRAM().to_bits().shape == (128,)

    def test_word_round_trip(self):
        ram = MVRAM()
        ram.write_word(3, [0, 1, 2, 3, 0, 1, 2, 3])
        np.testing.assert_array_equal(ram.read_word(3), [0, 1, 2, 3, 0, 1, 2, 3])

    def test_word_bounds(self):
        ram = MVRAM()
        with pytest.raises(ValueError):
            ram.write_word(8, [0] * 8)
        with pytest.raises(ValueError):
            ram.read_word(-1)

    def test_digit_range_enforced(self):
        ram = MVRAM()
        with pytest.raises(ValueError):
            ram.write_word(0, [0, 1, 2, 4, 0, 0, 0, 0])
        with pytest.raises(ValueError):
            ram.write_digit(0, 9)

    def test_bits_round_trip(self):
        rng = np.random.default_rng(3)
        ram = MVRAM()
        ram.load_digits(rng.integers(0, 4, size=N_CELLS))
        back = MVRAM.from_bits(ram.to_bits())
        np.testing.assert_array_equal(back.digits(), ram.digits())

    def test_flat_digit_access(self):
        ram = MVRAM()
        ram.write_digit(17, 3)
        assert ram.read_digit(17) == 3
        assert ram.read_word(2)[1] == 3  # 17 = 2*8 + 1

    def test_hold_power_is_tiny(self):
        # One frame's 64 storage nodes draw nanowatts — the basis of the
        # paper's <=100 mW-per-1e9-cells claim.
        assert 0.0 < MVRAM().hold_power_w() < 1e-6


class TestCellFrame:
    def test_default_config_round_trip(self):
        cfg = CellConfig()
        assert frame_to_cell(cell_to_frame(cfg)) == cfg

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_config_round_trip(self, seed):
        cfg = random_config(np.random.default_rng(seed))
        back = frame_to_cell(cell_to_frame(cfg))
        assert back == cfg

    def test_frame_length(self):
        assert len(cell_to_frame(CellConfig())) == FRAME_BITS

    def test_decode_rejects_bad_crosspoint_digit(self):
        digits = encode_cell(CellConfig())
        digits[0] = 3  # crosspoint trits are 0..2
        with pytest.raises(ValueError, match="crosspoint"):
            decode_cell(digits)

    def test_decode_rejects_bad_direction(self):
        digits = encode_cell(CellConfig())
        digits[42] = 2
        with pytest.raises(ValueError, match="direction"):
            decode_cell(digits)

    def test_decode_rejects_reserved_use(self):
        digits = encode_cell(CellConfig())
        digits[60] = 1
        with pytest.raises(ValueError, match="reserved"):
            decode_cell(digits)

    def test_decode_rejects_bad_tap(self):
        digits = encode_cell(CellConfig())
        digits[55], digits[56] = 1, 2  # encodes 6: not a row, not None
        with pytest.raises(ValueError, match="lfb tap"):
            decode_cell(digits)


class TestArrayBitstream:
    def test_round_trip(self):
        rng = np.random.default_rng(11)
        configs = [[random_config(rng) for _ in range(3)] for _ in range(2)]
        back = decode_array(encode_array(configs))
        assert back == configs

    def test_stream_length(self):
        configs = [[CellConfig() for _ in range(4)] for _ in range(2)]
        bits = encode_array(configs)
        assert len(bits) == 16 + 2 * 4 * FRAME_BITS + 16

    def test_corruption_detected(self):
        configs = [[CellConfig()]]
        bits = encode_array(configs)
        bits[40] ^= 1  # flip a payload bit
        with pytest.raises(BitstreamError, match="CRC"):
            decode_array(bits)

    def test_truncation_detected(self):
        bits = encode_array([[CellConfig()]])
        with pytest.raises(BitstreamError, match="length"):
            decode_array(bits[:-8])

    def test_ragged_rows_rejected(self):
        with pytest.raises(BitstreamError, match="cells"):
            encode_array([[CellConfig(), CellConfig()], [CellConfig()]])

    def test_crc16_known_properties(self):
        bits = np.zeros(64, dtype=np.uint8)
        a = crc16(bits)
        bits[5] = 1
        b = crc16(bits)
        assert a != b
        assert 0 <= a <= 0xFFFF
