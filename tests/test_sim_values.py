"""Unit tests for the four-valued logic algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.values import (
    ONE,
    X,
    Z,
    ZERO,
    and_,
    format_value,
    from_bool,
    invert,
    is_defined,
    nand,
    or_,
    resolve,
    to_bool,
    xor2,
)

defined = st.sampled_from([ZERO, ONE])
anyval = st.sampled_from([ZERO, ONE, X, Z])


class TestBasics:
    def test_is_defined(self):
        assert is_defined(ZERO) and is_defined(ONE)
        assert not is_defined(X) and not is_defined(Z)

    def test_bool_round_trip(self):
        assert to_bool(from_bool(True)) is True
        assert to_bool(from_bool(False)) is False

    def test_to_bool_rejects_undefined(self):
        with pytest.raises(ValueError):
            to_bool(X)
        with pytest.raises(ValueError):
            to_bool(Z)

    def test_invert(self):
        assert invert(ZERO) == ONE
        assert invert(ONE) == ZERO
        assert invert(X) == X
        assert invert(Z) == X

    def test_format(self):
        assert [format_value(v) for v in (ZERO, ONE, X, Z)] == ["0", "1", "X", "Z"]


class TestNand:
    def test_truth_table(self):
        assert nand([ZERO, ZERO]) == ONE
        assert nand([ZERO, ONE]) == ONE
        assert nand([ONE, ZERO]) == ONE
        assert nand([ONE, ONE]) == ZERO

    def test_empty_is_one(self):
        # A NAND row with no enabled crosspoints has no pull-down path, so
        # its output rests high (Fig. 4's constant-1 configuration).
        assert nand([]) == ONE

    def test_controlling_zero_beats_x(self):
        assert nand([ZERO, X]) == ONE
        assert nand([Z, ZERO, ONE]) == ONE

    def test_x_poisons_otherwise(self):
        assert nand([ONE, X]) == X
        assert nand([ONE, Z]) == X

    def test_single_input_is_inverter(self):
        assert nand([ZERO]) == ONE
        assert nand([ONE]) == ZERO

    @given(st.lists(defined, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_matches_boolean_nand(self, bits):
        expect = from_bool(not all(b == ONE for b in bits))
        assert nand(bits) == expect


class TestAndOrXor:
    @given(st.lists(defined, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_and_matches(self, bits):
        assert and_(bits) == from_bool(all(b == ONE for b in bits))

    @given(st.lists(defined, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_or_matches(self, bits):
        assert or_(bits) == from_bool(any(b == ONE for b in bits))

    def test_or_one_dominates_x(self):
        assert or_([ONE, X]) == ONE

    def test_and_zero_dominates_x(self):
        assert and_([ZERO, X]) == ZERO

    @given(a=defined, b=defined)
    @settings(max_examples=20, deadline=None)
    def test_xor_matches(self, a, b):
        assert xor2(a, b) == from_bool(a != b)

    def test_xor_poisoned_by_x(self):
        assert xor2(ONE, X) == X
        assert xor2(Z, ZERO) == X


class TestResolve:
    def test_all_z_floats(self):
        assert resolve([Z, Z, Z]) == Z
        assert resolve([]) == Z

    def test_single_driver_wins(self):
        assert resolve([Z, ONE, Z]) == ONE
        assert resolve([ZERO]) == ZERO

    def test_conflict_is_x(self):
        assert resolve([ONE, ZERO]) == X

    def test_agreeing_drivers_ok(self):
        assert resolve([ONE, Z, ONE]) == ONE

    def test_x_driver_poisons(self):
        assert resolve([X, ONE]) == X

    @given(st.lists(anyval, max_size=5))
    @settings(max_examples=200, deadline=None)
    def test_resolve_order_independent(self, drivers):
        import itertools

        base = resolve(drivers)
        for perm in itertools.islice(itertools.permutations(drivers), 6):
            assert resolve(perm) == base

    @given(st.lists(anyval, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_adding_z_never_changes_resolution(self, drivers):
        assert resolve(drivers + [Z]) == resolve(drivers)
