"""Correctness proofs for cross-compile incremental recompiles.

:func:`repro.pnr.compile_incremental` is only allowed to trade
wall-clock for reuse — never correctness and never more quality than
the gate below.  These tests pin that contract on randomized
single-gate edits to the rca8 and mul2 designs:

* **equivalence** — every delta-path result verifies dual-backend
  against the *edited* source netlist (the same proof a cold compile
  gets);
* **quality** — cycle time and wirelength stay within a fixed envelope
  of a cold compile of the same edit (the delta path keeps the cached
  placement, so it can land either side of cold; the envelope below is
  the measured worst case with margin);
* **fallback** — oversized deltas provably raise
  :class:`IncrementalFallback` instead of degrading;
* **determinism** — the delta path is byte-reproducible;
* **speed** — a one-gate edit to rca8 recompiles >= 5x faster than
  cold (the ISSUE 7 acceptance bar).
"""

import random
import time

import pytest

from repro.datapath.adder import ripple_carry_netlist
from repro.datapath.multiplier import array_multiplier_netlist
from repro.netlist import Netlist
from repro.pnr import (
    IncrementalFallback,
    compile_incremental,
    compile_sharded,
    compile_to_fabric,
    design_delta,
    map_netlist,
    verify_equivalence,
)

#: Quality envelope of the delta path relative to a cold compile of the
#: same edit.  Measured worst case over the seeded trials below is
#: ~1.30x on mul2 cycle time (tiny designs amplify ratios); the +6
#: absolute term keeps the gate meaningful when cold values are small.
QUALITY_RATIO = 1.35
QUALITY_SLACK = 6

FLIP = {"and": "or", "or": "and", "nand": "and", "nor": "or"}


def clone(nl, edit=None):
    """Rebuild ``nl``; ``edit`` is (cell_name, fn(cell) -> (kind, inputs))."""
    out = Netlist(nl.name)
    for p in nl.inputs:
        out.add_input(p)
    for p in nl.outputs:
        out.add_output(p)
    for c in nl.cells:
        kind, inputs = c.kind, list(c.inputs)
        if edit and c.name == edit[0]:
            kind, inputs = edit[1](c)
        out.add(kind, c.name, inputs, c.output, delay=c.delay, **dict(c.params))
    return out


def random_edit(nl, rng):
    """One random single-gate edit: a kind flip or an input rewire.

    Rewires pick a topologically earlier net, so the edit always stays
    acyclic; both edit shapes exercise the De Morgan complement
    machinery in the tech mapper (a flip can add/remove shared
    inverter gates, a rewire changes net pin lists).
    """
    cand = [c for c in nl.cells if c.kind in FLIP]
    c = rng.choice(cand)
    if rng.random() < 0.5:
        return (c.name, lambda cell: (FLIP[cell.kind], list(cell.inputs)))
    order = [x.name for x in nl.topo_order()]
    pos = order.index(c.name)
    earlier = list(nl.inputs) + [nl.cell(n).output for n in order[:pos]]
    earlier = [n for n in earlier if n not in c.inputs]
    if not earlier:
        return (c.name, lambda cell: (FLIP[cell.kind], list(cell.inputs)))
    newnet = rng.choice(earlier)
    i = rng.randrange(len(c.inputs))

    def rewire(cell, i=i, newnet=newnet):
        ins = list(cell.inputs)
        ins[i] = newnet
        return (cell.kind, ins)

    return (c.name, rewire)


@pytest.fixture(scope="module")
def rca8_base():
    nl = ripple_carry_netlist(8)
    return nl, compile_to_fabric(nl, seed=0, workers=0)


@pytest.fixture(scope="module")
def mul2_base():
    nl = array_multiplier_netlist(2)
    return nl, compile_to_fabric(nl, seed=0, workers=0)


def _check_quality(inc, cold):
    assert inc.stats.cycle_time <= max(
        cold.stats.cycle_time * QUALITY_RATIO,
        cold.stats.cycle_time + QUALITY_SLACK,
    )
    assert inc.stats.wirelength <= max(
        cold.stats.wirelength * QUALITY_RATIO,
        cold.stats.wirelength + QUALITY_SLACK,
    )


@pytest.mark.parametrize("trial", range(8))
def test_random_edits_rca8_equivalent_and_within_quality(rca8_base, trial):
    nl, base = rca8_base
    rng = random.Random(100 + trial)
    edited = clone(nl, random_edit(nl, rng))
    try:
        inc = compile_incremental(edited, base, seed=0)
    except IncrementalFallback:
        # A single IR edit may still explode at the mapped level (the
        # De Morgan complement namespace shifts); the fallback *is* the
        # contract then — prove the edit still compiles cold.
        cold = compile_to_fabric(edited, seed=0, workers=0)
        assert verify_equivalence(cold, n_vectors=64, seed=trial)["ok"]
        return
    assert verify_equivalence(inc, n_vectors=128, seed=trial)["ok"]
    cold = compile_to_fabric(edited, seed=0, workers=0)
    _check_quality(inc, cold)


@pytest.mark.parametrize("trial", range(6))
def test_random_edits_mul2_equivalent_and_within_quality(mul2_base, trial):
    nl, base = mul2_base
    rng = random.Random(7 + trial)
    edited = clone(nl, random_edit(nl, rng))
    try:
        inc = compile_incremental(edited, base, seed=0)
    except IncrementalFallback:
        cold = compile_to_fabric(edited, seed=0, workers=0)
        assert verify_equivalence(cold, n_vectors=64, seed=trial)["ok"]
        return
    assert verify_equivalence(inc, n_vectors=128, seed=trial)["ok"]
    cold = compile_to_fabric(edited, seed=0, workers=0)
    _check_quality(inc, cold)


def test_incremental_is_deterministic(rca8_base):
    nl, base = rca8_base
    target = next(c for c in nl.cells if c.kind == "and")
    edited = clone(nl, (target.name, lambda c: ("or", list(c.inputs))))
    a = compile_incremental(edited, base, seed=0)
    b = compile_incremental(edited, base, seed=0)
    assert a.to_bitstream().tobytes() == b.to_bitstream().tobytes()


def test_design_delta_accounting(rca8_base):
    nl, base = rca8_base
    same = design_delta(base.design, map_netlist(clone(nl)))
    assert not same.added and not same.removed and not same.changed
    assert same.frac == 0.0

    target = next(c for c in nl.cells if c.kind == "and")
    edited = map_netlist(clone(nl, (target.name, lambda c: ("nand", list(c.inputs)))))
    delta = design_delta(base.design, edited)
    assert delta.n_edits >= 1
    assert target.name in (delta.changed | delta.added | delta.removed)
    assert 0 < delta.frac <= 1


def test_oversized_delta_provably_falls_back(rca8_base):
    nl, base = rca8_base
    # Rename every gate: nothing survives the name-matched diff, so the
    # delta is the whole design.
    renamed = Netlist(nl.name)
    for p in nl.inputs:
        renamed.add_input(p)
    for p in nl.outputs:
        renamed.add_output(p)
    for c in nl.cells:
        renamed.add(c.kind, "Z" + c.name, list(c.inputs), c.output,
                    delay=c.delay, **dict(c.params))
    with pytest.raises(IncrementalFallback, match="delta touches"):
        compile_incremental(renamed, base, seed=0)


def test_zero_budget_rejects_any_edit(rca8_base):
    nl, base = rca8_base
    target = next(c for c in nl.cells if c.kind == "and")
    edited = clone(nl, (target.name, lambda c: ("or", list(c.inputs))))
    with pytest.raises(IncrementalFallback):
        compile_incremental(edited, base, max_delta_frac=0.0, seed=0)


def test_sharded_base_falls_back():
    nl = ripple_carry_netlist(8)
    sharded = compile_sharded(nl, 2, seed=0, workers=0)
    with pytest.raises(IncrementalFallback, match="PnrResult"):
        compile_incremental(clone(nl), sharded, seed=0)


def test_identity_edit_replays_the_whole_design(rca8_base):
    """A no-op edit must reuse everything and reproduce the base quality."""
    nl, base = rca8_base
    inc = compile_incremental(clone(nl), base, seed=0)
    assert verify_equivalence(inc, n_vectors=64, seed=5)["ok"]
    assert inc.stats.cycle_time == base.stats.cycle_time
    assert inc.stats.wirelength == base.stats.wirelength
    assert inc.placement.positions == base.placement.positions


def test_one_gate_edit_is_5x_faster_than_cold(rca8_base):
    """The ISSUE 7 acceptance bar, measured min-of-3 on both paths."""
    nl, base = rca8_base
    target = next(c for c in nl.cells if c.kind == "and")
    edited = clone(nl, (target.name, lambda c: ("or", list(c.inputs))))

    def best_of(fn, n=3):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_cold = best_of(lambda: compile_to_fabric(edited, seed=0, workers=0))
    t_inc = best_of(lambda: compile_incremental(edited, base, seed=0))
    assert t_inc * 5 <= t_cold, (
        f"incremental {t_inc * 1e3:.1f} ms vs cold {t_cold * 1e3:.1f} ms "
        f"({t_cold / t_inc:.1f}x)"
    )
