"""Tests for the backend-neutral netlist IR."""

import pytest

from repro.netlist import (
    Cell,
    CyclicNetlistError,
    NetRef,
    Netlist,
    NetlistError,
    with_fault_points,
)


def _nand_cone() -> Netlist:
    nl = Netlist("cone")
    a, b = nl.add_input("a"), nl.add_input("b")
    nab = nl.add("nand", "g1", [a, b], "nab", delay=2)
    nl.add("not", "g2", [nab], "y")
    nl.add_output("y")
    return nl


class TestConstruction:
    def test_add_returns_output_ref(self):
        nl = Netlist()
        out = nl.add("nand", "g", ["a", "b"], "y")
        assert isinstance(out, NetRef)
        assert out.name == "y"

    def test_cells_in_insertion_order(self):
        nl = _nand_cone()
        assert [c.name for c in nl.cells] == ["g1", "g2"]
        assert nl.n_cells == 2

    def test_cell_lookup(self):
        nl = _nand_cone()
        cell = nl.cell("g1")
        assert isinstance(cell, Cell)
        assert cell.kind == "nand"
        assert cell.inputs == ("a", "b")
        assert cell.delay == 2
        with pytest.raises(NetlistError, match="no cell"):
            nl.cell("nope")

    def test_duplicate_cell_name_rejected(self):
        nl = _nand_cone()
        with pytest.raises(NetlistError, match="duplicate"):
            nl.add("buf", "g1", ["a"], "z")

    def test_unknown_kind_rejected(self):
        nl = Netlist()
        with pytest.raises(NetlistError, match="unknown cell kind"):
            nl.add("frobnicate", "g", ["a"], "y")

    def test_arity_enforced(self):
        nl = Netlist()
        with pytest.raises(NetlistError, match="needs 1 inputs"):
            nl.add("not", "g", ["a", "b"], "y")
        with pytest.raises(NetlistError, match="needs 2 inputs"):
            nl.add("xor", "g", ["a"], "y")

    def test_delay_must_be_positive(self):
        nl = Netlist()
        with pytest.raises(NetlistError, match="delay"):
            nl.add("buf", "g", ["a"], "y", delay=0)

    def test_const_requires_value(self):
        nl = Netlist()
        with pytest.raises(NetlistError, match="value"):
            nl.add("const", "g", [], "y")
        nl.add("const", "ok", [], "y", value=1)
        assert nl.cell("ok").param("value") == 1

    def test_table_length_checked(self):
        nl = Netlist()
        with pytest.raises(NetlistError, match="table needs 4 entries"):
            nl.add("table", "g", ["a", "b"], "y", table=[0, 1])
        nl.add("table", "ok", ["a", "b"], "y", table=[0, 1, 1, 0])


class TestConnectivity:
    def test_drivers_and_readers(self):
        nl = _nand_cone()
        assert [c.name for c in nl.drivers_of("nab")] == ["g1"]
        assert [c.name for c in nl.readers_of("nab")] == ["g2"]
        assert nl.drivers_of("a") == []

    def test_free_inputs(self):
        nl = _nand_cone()
        assert nl.free_inputs() == ["a", "b"]

    def test_multi_driven_detection(self):
        nl = Netlist()
        nl.add("tristate", "d0", ["a", "e0"], "bus")
        nl.add("tristate", "d1", ["b", "e1"], "bus")
        assert nl.multi_driven_nets() == ["bus"]

    def test_kind_counts(self):
        nl = _nand_cone()
        assert nl.kind_counts() == {"nand": 1, "not": 1}

    def test_topo_order_respects_dependencies(self):
        nl = Netlist()
        nl.add("not", "late", ["mid"], "out")
        nl.add("buf", "early", ["in"], "mid")
        order = [c.name for c in nl.topo_order()]
        assert order.index("early") < order.index("late")

    def test_cycle_detected(self):
        nl = Netlist()
        nl.add("not", "g0", ["n1"], "n0")
        nl.add("not", "g1", ["n0"], "n1")
        with pytest.raises(CyclicNetlistError, match="feedback"):
            nl.topo_order()
        assert not nl.is_combinational()

    def test_combinational_predicate(self):
        assert _nand_cone().is_combinational()
        nl = Netlist()
        nl.add("celement", "c", ["a", "b"], "y")
        assert not nl.is_combinational()


class TestHierarchy:
    def test_instantiate_flattens_with_prefix(self):
        sub = _nand_cone()
        top = Netlist("top")
        ports = top.instantiate(sub, "u0", {"a": "p", "b": "q", "y": "r"})
        assert ports["y"].name == "r"
        assert {c.name for c in top.cells} == {"u0.g1", "u0.g2"}
        # Internal net renamed under the prefix.
        assert "u0.nab" in top.net_names()
        assert [c.name for c in top.drivers_of("r")] == ["u0.g2"]

    def test_instantiate_twice_no_collision(self):
        sub = _nand_cone()
        top = Netlist("top")
        top.instantiate(sub, "u0", {"a": "p", "b": "q"})
        top.instantiate(sub, "u1", {"a": "p", "b": "q"})
        assert top.n_cells == 4

    def test_binding_non_port_rejected(self):
        sub = _nand_cone()
        top = Netlist("top")
        with pytest.raises(NetlistError, match="non-port"):
            top.instantiate(sub, "u0", {"nab": "x"})


class TestFaultPoints:
    def test_fault_inputs_cover_cell_outputs(self):
        nl = _nand_cone()
        faulty, faults = with_fault_points(nl)
        assert len(faults) == 2  # one per cell output
        assert set(faults) <= set(faulty.inputs)
        # Original ports survive the rewrite.
        assert "a" in faulty.inputs and "y" in faulty.outputs

    def test_fault_on_undriven_net_rejected(self):
        nl = _nand_cone()
        with pytest.raises(NetlistError, match="undriven"):
            with_fault_points(nl, nets=["a"])

    def test_fault_on_multi_driven_net_rejected(self):
        nl = Netlist()
        nl.add("tristate", "d0", ["a", "e0"], "bus")
        nl.add("tristate", "d1", ["b", "e1"], "bus")
        with pytest.raises(NetlistError, match="multi-driven"):
            with_fault_points(nl, nets=["bus"])
