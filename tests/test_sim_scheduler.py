"""Unit tests for the event-driven simulator core."""

import pytest

from repro.sim.primitives import BufGate, NandGate, NotGate, TristateGate
from repro.sim.scheduler import OscillationError, Simulator
from repro.sim.values import ONE, X, Z, ZERO


def make_inverter():
    sim = Simulator()
    a, y = sim.net("a"), sim.net("y")
    sim.add(NotGate("inv", [a], y, delay=2))
    return sim, a, y


class TestBasicPropagation:
    def test_inverter(self):
        sim, a, y = make_inverter()
        sim.drive(a, ONE, at=0)
        sim.run(until=10)
        assert y.value == ZERO

    def test_propagation_delay_respected(self):
        sim, a, y = make_inverter()
        sim.drive(a, ZERO, at=0)
        sim.run(until=5)
        assert y.value == ONE
        sim.drive(a, ONE, at=10)
        sim.run(until=11)  # only 1 unit after the edge; gate delay is 2
        assert y.value == ONE
        sim.run(until=12)
        assert y.value == ZERO

    def test_nand_truth(self):
        sim = Simulator()
        a, b, y = sim.net("a"), sim.net("b"), sim.net("y")
        sim.add(NandGate("g", [a, b], y))
        for av, bv, expect in [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)]:
            sim.drive(a, av)
            sim.drive(b, bv)
            sim.run(until=sim.now + 5)
            assert y.value == expect, (av, bv)

    def test_chain_accumulates_delay(self):
        sim = Simulator()
        nets = [sim.net(f"n{i}") for i in range(5)]
        for i in range(4):
            sim.add(BufGate(f"b{i}", [nets[i]], nets[i + 1], delay=3))
        sim.trace("n4")
        sim.drive(nets[0], ZERO, at=0)
        sim.run(until=50)
        sim.drive(nets[0], ONE, at=100)
        sim.run(until=200)
        hist = sim.history("n4")
        # The 1 arrives 4 * 3 units after the edge at t=100.
        assert (112, ONE) in hist

    def test_uninitialised_inputs_give_x(self):
        sim = Simulator()
        a, y = sim.net("a"), sim.net("y")
        sim.add(NotGate("inv", [a], y))
        sim.run(until=5)  # no stimulus on a
        assert y.value == X


class TestInertialDelay:
    def test_narrow_glitch_absorbed(self):
        # A pulse narrower than the gate delay must not appear at the output.
        sim, a, y = make_inverter()  # delay=2
        sim.trace("y")
        sim.drive(a, ZERO, at=0)
        sim.run(until=10)
        sim.drive(a, ONE, at=20)
        sim.drive(a, ZERO, at=21)  # 1-wide pulse < delay 2
        sim.run(until=40)
        values = [v for _, v in sim.history("y")]
        assert ZERO not in values  # output stayed high throughout

    def test_wide_pulse_passes(self):
        sim, a, y = make_inverter()
        sim.trace("y")
        sim.drive(a, ZERO, at=0)
        sim.run(until=10)
        sim.drive(a, ONE, at=20)
        sim.drive(a, ZERO, at=25)  # 5-wide pulse > delay 2
        sim.run(until=40)
        values = [v for _, v in sim.history("y")]
        assert ZERO in values


class TestMultiDriver:
    def test_two_tristates_share_line(self):
        sim = Simulator()
        d1, d2, e1, e2, y = (sim.net(n) for n in ("d1", "d2", "e1", "e2", "y"))
        sim.add(TristateGate("t1", [d1, e1], y))
        sim.add(TristateGate("t2", [d2, e2], y))
        sim.drive(d1, ONE)
        sim.drive(d2, ZERO)
        sim.drive(e1, ONE)
        sim.drive(e2, ZERO)
        sim.run(until=10)
        assert y.value == ONE  # only t1 drives
        sim.drive(e1, ZERO)
        sim.drive(e2, ONE)
        sim.run(until=20)
        assert y.value == ZERO  # handover to t2

    def test_conflict_is_x(self):
        sim = Simulator()
        d1, d2, e, y = (sim.net(n) for n in ("d1", "d2", "e", "y"))
        sim.add(TristateGate("t1", [d1, e], y))
        sim.add(TristateGate("t2", [d2, e], y))
        sim.drive(d1, ONE)
        sim.drive(d2, ZERO)
        sim.drive(e, ONE)
        sim.run(until=10)
        assert y.value == X

    def test_all_released_floats(self):
        sim = Simulator()
        d, e, y = sim.net("d"), sim.net("e"), sim.net("y")
        sim.add(TristateGate("t", [d, e], y))
        sim.drive(d, ONE)
        sim.drive(e, ZERO)
        sim.run(until=10)
        assert y.value == Z


class TestFeedback:
    def test_nand_latch_sets_and_holds(self):
        # Cross-coupled NAND SR latch: the canonical feedback structure the
        # fabric's lfb lines exist to support.
        sim = Simulator()
        s_n, r_n, q, qn = (sim.net(n) for n in ("s_n", "r_n", "q", "qn"))
        sim.add(NandGate("g1", [s_n, qn], q))
        sim.add(NandGate("g2", [r_n, q], qn))
        sim.drive(s_n, ZERO)  # set
        sim.drive(r_n, ONE)
        sim.run(until=20)
        assert (q.value, qn.value) == (ONE, ZERO)
        sim.drive(s_n, ONE)  # hold
        sim.run(until=40)
        assert (q.value, qn.value) == (ONE, ZERO)
        sim.drive(r_n, ZERO)  # reset
        sim.run(until=60)
        assert (q.value, qn.value) == (ZERO, ONE)

    def test_ring_oscillator_detected(self):
        # Enabled NAND ring (odd inversion count): oscillates forever; the
        # event cap must turn that into a diagnosis instead of a hang.
        sim = Simulator()
        en, a, b, c = sim.net("en"), sim.net("a"), sim.net("b"), sim.net("c")
        sim.add(NandGate("g1", [en, c], a))
        sim.add(NotGate("i2", [a], b))
        sim.add(NotGate("i3", [b], c))
        # Settle to defined levels with the ring broken, then close it.
        sim.drive(en, ZERO, at=0)
        sim.run(until=20)
        sim.drive(en, ONE, at=21)
        with pytest.raises(OscillationError):
            sim.run(max_events=5_000)


class TestStimulusHelpers:
    def test_clock_generates_edges(self):
        sim = Simulator()
        clk = sim.net("clk")
        sim.trace("clk")
        sim.clock(clk, period=10, until=100)
        sim.run(until=100)
        hist = sim.history("clk")
        rising = [t for (t, v), (t2, v2) in zip(hist, hist[1:]) if v == ZERO and v2 == ONE]
        del rising
        toggles = [t for t, _ in hist]
        assert len(toggles) >= 20  # 10 full periods

    def test_stimulus_list(self):
        sim, a, y = make_inverter()
        sim.stimulus(a, [(0, ZERO), (10, ONE), (20, ZERO)])
        sim.run(until=30)
        assert y.value == ONE

    def test_past_drive_rejected(self):
        sim, a, _ = make_inverter()
        sim.run(until=100)
        with pytest.raises(ValueError):
            sim.drive(a, ONE, at=50)

    def test_bad_clock_period(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.clock(sim.net("clk"), period=1, until=100)


class TestObservation:
    def test_untraced_history_rejected(self):
        sim, a, _ = make_inverter()
        del a
        with pytest.raises(ValueError):
            sim.history("a")

    def test_values_ordered(self):
        sim = Simulator()
        a, b = sim.net("a"), sim.net("b")
        sim.drive(a, ONE)
        sim.drive(b, ZERO)
        sim.run(until=5)
        assert sim.values(["a", "b"]) == [ONE, ZERO]

    def test_gate_delay_validation(self):
        sim = Simulator()
        a, y = sim.net("a"), sim.net("y")
        with pytest.raises(ValueError):
            sim.add(NotGate("bad", [a], y, delay=0))

    def test_run_to_quiescence(self):
        sim, a, y = make_inverter()
        sim.drive(a, ONE, at=0)
        n = sim.run_to_quiescence()
        assert n > 0
        assert y.value == ZERO
        assert sim.pending_events() == 0
