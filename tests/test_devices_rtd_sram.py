"""Unit tests for the tunnelling SRAM cells (the multi-valued config bits)."""

import numpy as np
import pytest

from repro.devices.rtd_sram import (
    BackGateDriver,
    ResistiveRTDMemory,
    TunnellingSRAM,
)


@pytest.fixture(scope="module")
def cell3():
    """Nominal three-state bipolar latch used by the fabric."""
    return TunnellingSRAM()


class TestBipolarLatch:
    def test_three_states(self, cell3):
        # Single-peak stacks in the bipolar latch -> exactly three stable
        # crossings: the back-gate configuration trit.
        assert cell3.n_states == 3

    def test_states_symmetric_about_zero(self, cell3):
        v = [p.voltage for p in cell3.stable_points()]
        assert v[1] == pytest.approx(0.0, abs=0.05)
        assert v[0] == pytest.approx(-v[2], abs=0.05)

    def test_states_ordered(self, cell3):
        v = [p.voltage for p in cell3.stable_points()]
        assert v == sorted(v)

    def test_basins_partition_supply_range(self, cell3):
        pts = cell3.stable_points()
        assert pts[0].basin[0] == pytest.approx(-cell3.supply)
        assert pts[-1].basin[1] == pytest.approx(cell3.supply)
        for a, b in zip(pts, pts[1:]):
            assert a.basin[1] == pytest.approx(b.basin[0], abs=1e-9)

    def test_margins_positive(self, cell3):
        for p in cell3.stable_points():
            assert p.margin_current > 0.0

    def test_rejects_nonpositive_supply(self):
        with pytest.raises(ValueError):
            TunnellingSRAM(supply=-1.0)


class TestResistiveMemory:
    """Wei & Lin [33] / Seabaugh [36] multi-valued cells: n peaks -> n+1 states."""

    @pytest.mark.parametrize("n_peaks,expected", [(1, 2), (2, 3), (4, 5), (8, 9)])
    def test_state_count(self, n_peaks, expected):
        assert ResistiveRTDMemory(n_peaks).n_states == expected

    def test_nine_state_cell(self):
        # The paper cites Seabaugh's nine-state RTD memory [36].
        assert ResistiveRTDMemory(8).n_states == 9

    def test_states_ascending_and_separated(self):
        m = ResistiveRTDMemory(4)
        v = [p.voltage for p in m.stable_points()]
        assert v == sorted(v)
        assert min(np.diff(v)) > 0.5  # well-separated levels

    def test_hold_current_finite(self):
        m = ResistiveRTDMemory(2)
        for k in range(m.n_states):
            assert 0.0 <= m.hold_current(k) < 1e-9


class TestWriteSettle:
    def test_settle_returns_written_state(self, cell3):
        for k in range(cell3.n_states):
            assert cell3.settle(cell3.write(k)) == k

    def test_settle_whole_range_consistent_with_basins(self, cell3):
        pts = cell3.stable_points()
        for v0 in np.linspace(-1.65, 1.65, 61):
            k = cell3.settle(float(v0))
            lo, hi = pts[k].basin
            assert lo - 1e-9 <= v0 <= hi + 1e-9

    def test_write_rejects_bad_index(self, cell3):
        with pytest.raises(ValueError):
            cell3.write(99)

    def test_settle_clips_overdrive(self, cell3):
        assert cell3.settle(99.0) == cell3.n_states - 1
        assert cell3.settle(-99.0) == 0

    def test_resistive_settle_round_trip(self):
        m = ResistiveRTDMemory(4)
        for k in range(m.n_states):
            assert m.settle(m.write(k)) == k


class TestHoldPower:
    def test_hold_current_is_picoamp_scale(self, cell3):
        # Paper (Section 3): RTD peak currents of 10-50 pA imply <100 mW
        # for 1e9 cells; the standby current must sit at/below peak scale.
        for k in range(cell3.n_states):
            i = cell3.hold_current(k)
            assert 0.0 < i < 200e-12


class TestBackGateDriver:
    def test_maps_states_to_config_levels(self, cell3):
        drv = BackGateDriver(cell3)
        assert drv.bias_for_state(0) == -2.0
        assert drv.bias_for_state(1) == 0.0
        assert drv.bias_for_state(2) == +2.0

    def test_round_trip(self, cell3):
        drv = BackGateDriver(cell3)
        for k in range(3):
            assert drv.state_for_bias(drv.bias_for_state(k)) == k

    def test_state_count_mismatch_rejected(self, cell3):
        with pytest.raises(ValueError):
            BackGateDriver(cell3, target_levels=(-2.0, 0.0, 1.0, 2.0))

    def test_calibration_error_small(self, cell3):
        # The symmetric three-state latch fits the -2/0/+2 line exactly.
        drv = BackGateDriver(cell3)
        assert drv.calibration_error() < 0.25

    def test_bias_for_state_bounds(self, cell3):
        drv = BackGateDriver(cell3)
        with pytest.raises(ValueError):
            drv.bias_for_state(3)

    def test_works_with_resistive_cell(self):
        m = ResistiveRTDMemory(2)
        drv = BackGateDriver(m)
        assert drv.bias_for_state(2) == 2.0
