"""Tests for the static timing analysis and timing-driven compilation.

The timing model (docs/timing-model.md) promises three things that are
checked here mechanically:

* **consistency** — the routed STA composes exactly the delays
  `CellArray.to_netlist` annotates, so its cycle time equals the
  IR-level longest-path bound over the emitted fabric netlist;
* **soundness vs the event simulator** — measured settle time after an
  input change never exceeds the reported critical path, and a design
  whose critical path is fully exercised (an inverter chain) settles in
  exactly the reported cycle time;
* **monotone improvement** — `compile_to_fabric(..., timing_driven=True)`
  never reports a worse worst slack / cycle time than the HPWL-only
  placement on the same seed (regression-tested on rca8).
"""

import numpy as np
import pytest

from repro.datapath.accumulator import accumulator_step_netlist
from repro.datapath.adder import ripple_carry_netlist
from repro.datapath.multiplier import array_multiplier_netlist
from repro.netlist import BatchBackend, EventBackend, Netlist
from repro.pnr import (
    HOP_DELAY,
    analyze_timing,
    anneal_placement,
    compile_to_fabric,
    hpwl,
    initial_placement,
    map_netlist,
    suggest_array,
    verify_equivalence,
    weighted_hpwl,
)
from repro.sim.values import ONE, ZERO, X


def one_bit_adder() -> Netlist:
    nl = Netlist("fa1")
    a, b, c = (nl.add_input(x) for x in "abc")
    nl.add("xor", "x1", [a, b], "t")
    nl.add("xor", "x2", ["t", c], nl.add_output("s"))
    nl.add("and", "a1", [a, b], "ab")
    nl.add("and", "a2", ["t", c], "tc")
    nl.add("or", "o1", ["ab", "tc"], nl.add_output("cout"))
    return nl


def inverter_chain(n: int) -> Netlist:
    nl = Netlist(f"chain{n}")
    prev = nl.add_input("a")
    for k in range(n):
        prev = nl.add("not", f"inv{k}", [prev], f"n{k}")
    nl.add("buf", "out", [prev], nl.add_output("y"))
    return nl


# ----------------------------------------------------------------------
# The analysis itself
# ----------------------------------------------------------------------

class TestAnalyzeTiming:
    def test_logic_mode_is_pure_depth(self):
        """Without placement, cycle time is gate depth x fabric delay."""
        design = map_netlist(inverter_chain(5))
        report = analyze_timing(design)
        assert report.mode == "logic"
        # 5 inverters + 1 buffer, 3 units each, zero wire delay.
        assert report.cycle_time == report.logic_delay == 18
        assert report.worst_slack == 0
        assert report.wire_delay == 0

    def test_placed_mode_estimates_wires(self):
        nl = one_bit_adder()
        res = compile_to_fabric(nl, seed=0)
        report = analyze_timing(res.design, res.placement)
        assert report.mode == "placed"
        assert report.cycle_time >= report.logic_delay

    @pytest.mark.parametrize(
        "netlist",
        [one_bit_adder(), ripple_carry_netlist(4), inverter_chain(7)],
        ids=["fa1", "rca4", "chain7"],
    )
    def test_routed_sta_matches_ir_arrival_bound(self, netlist):
        """Acceptance: the routed STA equals the IR longest-path bound.

        `analyze_timing` works on mapped gates and routed wire counts;
        `Netlist.arrival_times` works on the emitted fabric netlist with
        its per-cell delay annotations.  Both views of the same compiled
        design must agree exactly.
        """
        res = compile_to_fabric(netlist, seed=0)
        assert res.timing is not None and res.timing.mode == "routed"
        fabric = res.fabric_netlist().netlist
        assert res.timing.cycle_time == max(fabric.arrival_times().values())

    def test_critical_path_is_traceable(self):
        res = compile_to_fabric(ripple_carry_netlist(4), seed=0)
        t = res.timing
        steps = t.critical_path
        assert steps[0].kind == "launch" and steps[0].arrival == 0
        assert steps[-1].kind == "capture" and steps[-1].arrival == t.cycle_time
        arrivals = [s.arrival for s in steps]
        assert arrivals == sorted(arrivals)
        for step in steps:
            if step.kind in ("gate", "pair"):
                assert step.name in res.design.gates
                assert step.cell in res.placement.cells_of(
                    res.design.gates[step.name]
                )
        assert t.format().startswith("cycle time")

    def test_criticality_normalised(self):
        res = compile_to_fabric(ripple_carry_netlist(4), seed=0)
        crit = res.timing.criticality
        assert all(0.0 <= c <= 1.0 for c in crit.values())
        assert max(crit.values()) == 1.0
        # The endpoint's net is critical by definition.
        endpoint = res.timing.endpoint
        assert crit[endpoint] == 1.0

    def test_slack_against_explicit_period(self):
        nl = inverter_chain(3)
        res = compile_to_fabric(nl, seed=0, target_period=1000)
        assert res.timing.target_period == 1000
        assert res.timing.worst_slack == 1000 - res.timing.cycle_time
        assert res.timing.worst_slack > 0

    def test_pair_macros_are_endpoints(self):
        """Paths capture at a C-element's pins and relaunch at its output."""
        nl = Netlist("ce")
        a, b = nl.add_input("a"), nl.add_input("b")
        nl.add("celement", "c", [a, b], "q", init=X)
        nl.add("not", "inv", ["q"], nl.add_output("y"))
        res = compile_to_fabric(nl, seed=0)
        t = res.timing
        (pair,) = [g for g in res.design.gates.values() if g.is_stateful]
        # The pair launches its output at its own forward delay; the
        # downstream inverter path rides on top of that.
        assert t.arrivals["q"] == pair.fabric_delay == 6
        assert t.cycle_time >= pair.fabric_delay + 3


# ----------------------------------------------------------------------
# Agreement with the event simulator
# ----------------------------------------------------------------------

class TestEventSimAgreement:
    def _settle_times(self, res, vectors, seed=0):
        """Quiescence intervals after input changes on the event engine."""
        sim = EventBackend().elaborate(res.fabric_netlist().netlist)
        free = res.fabric_netlist().netlist.free_inputs()
        rng = np.random.default_rng(seed)
        wires = list(res.input_wires.values())
        # Settle the power-on transient before measuring.
        for w in free:
            sim.drive(w, ZERO)
        sim.run_to_quiescence(max_time=100_000)
        settles = []
        for _ in range(vectors):
            t0 = sim.now
            for w in wires:
                sim.drive(w, ONE if rng.integers(0, 2) else ZERO)
            sim.run_to_quiescence(max_time=t0 + 100_000)
            settles.append(sim.now - t0)
        return settles

    def test_settle_time_never_exceeds_critical_path(self):
        """STA soundness: the simulator can never be slower than the STA."""
        for netlist in (one_bit_adder(), ripple_carry_netlist(4)):
            res = compile_to_fabric(netlist, seed=0)
            for settle in self._settle_times(res, vectors=24):
                assert settle <= res.timing.cycle_time

    def test_chain_settles_in_exactly_the_cycle_time(self):
        """A fully exercised critical path meets the STA bound exactly.

        Toggling the input of an inverter chain makes every gate and
        feed-through on the (only) path switch, so the last event lands
        at precisely the reported cycle time — the STA is tight, not
        just an over-approximation.
        """
        res = compile_to_fabric(inverter_chain(6), seed=0)
        sim = EventBackend().elaborate(res.fabric_netlist().netlist)
        wire = res.input_wires["a"]
        sim.drive(wire, ZERO)
        sim.run_to_quiescence(max_time=100_000)
        for value in (ONE, ZERO, ONE):
            t0 = sim.now
            sim.drive(wire, value)
            sim.run_to_quiescence(max_time=t0 + 100_000)
            assert sim.now - t0 == res.timing.cycle_time


# ----------------------------------------------------------------------
# Timing-driven compilation
# ----------------------------------------------------------------------

class TestTimingDriven:
    def test_rca8_regression_never_worse(self):
        """Acceptance: timing-driven never worsens worst slack on rca8."""
        nl = ripple_carry_netlist(8)
        base = compile_to_fabric(nl, seed=0)
        timed = compile_to_fabric(nl, seed=0, timing_driven=True)
        assert timed.timing.cycle_time <= base.timing.cycle_time
        assert timed.timing.worst_slack >= base.timing.worst_slack
        verify_equivalence(timed, n_vectors=256, event_vectors=2)

    def test_multiplier_timing_driven_verifies(self):
        nl = array_multiplier_netlist(2)
        base = compile_to_fabric(nl, seed=0)
        timed = compile_to_fabric(nl, seed=0, timing_driven=True)
        assert timed.timing.cycle_time <= base.timing.cycle_time
        verify_equivalence(timed, n_vectors=256, event_vectors=2)

    def test_zero_weight_is_plain_hpwl(self):
        """timing_weight=0 challengers can still only improve the pick."""
        nl = ripple_carry_netlist(4)
        base = compile_to_fabric(nl, seed=0)
        timed = compile_to_fabric(nl, seed=0, timing_driven=True, timing_weight=0.0)
        assert timed.timing.cycle_time <= base.timing.cycle_time

    def test_weighted_hpwl_is_the_anneal_objective(self):
        """The anneal with net_weights optimises exactly weighted_hpwl."""
        import random

        from repro.fabric.floorplan import Region

        design = map_netlist(ripple_carry_netlist(4))
        arr = suggest_array(design)
        region = Region("r", 0, 0, arr.n_rows, arr.n_cols)
        seed = initial_placement(design, region, random.Random(0))
        # Unweighted, weighted_hpwl degenerates to plain HPWL.
        assert weighted_hpwl(design, seed, {}) == hpwl(design, seed)
        report = analyze_timing(design, seed)
        weights = {n: 1.0 + 2.0 * c for n, c in report.criticality.items()}
        refined = anneal_placement(
            design, seed, random.Random(1), net_weights=weights
        )
        assert weighted_hpwl(design, refined, weights) <= weighted_hpwl(
            design, seed, weights
        )

    def test_stats_mirror_report(self):
        res = compile_to_fabric(ripple_carry_netlist(4), seed=0)
        assert res.stats.cycle_time == res.timing.cycle_time
        assert res.stats.worst_slack == res.timing.worst_slack
        assert res.stats.logic_delay == res.timing.logic_delay


# ----------------------------------------------------------------------
# Delay metadata plumbing
# ----------------------------------------------------------------------

class TestDelayMetadata:
    def test_source_delay_survives_mapping(self):
        nl = Netlist("d")
        a = nl.add_input("a")
        nl.add("not", "g", [a], nl.add_output("y"), delay=7)
        design = map_netlist(nl)
        (gate,) = [g for g in design.gates.values() if g.output == "y"]
        assert gate.source_delay == 7
        # The fabric delay is set by the row/driver, not the annotation.
        assert gate.fabric_delay == 3

    def test_hop_delay_matches_fabric_constants(self):
        from repro.fabric.array import ROW_DELAY
        from repro.fabric.driver import DRIVER_DELAY, DriverMode

        assert HOP_DELAY == ROW_DELAY + DRIVER_DELAY[DriverMode.INVERT]

    def test_ir_critical_path_accessor(self):
        nl = inverter_chain(4)
        path = nl.critical_path()
        assert [c.name for c in path] == ["inv0", "inv1", "inv2", "inv3", "out"]
        arr = nl.arrival_times()
        assert arr["y"] == 5  # 4 inverters + 1 buffer, delay 1 each


# ----------------------------------------------------------------------
# Scale-benchmark generators
# ----------------------------------------------------------------------

class TestScaleGenerators:
    def test_array_multiplier_exhaustive(self):
        n = 3
        nl = array_multiplier_netlist(n)
        lim = 1 << n
        a = np.repeat(np.arange(lim), lim)
        b = np.tile(np.arange(lim), lim)
        stim = {}
        for k in range(n):
            stim[f"a{k}"] = ((a >> k) & 1).astype(np.uint8)
            stim[f"b{k}"] = ((b >> k) & 1).astype(np.uint8)
        out = BatchBackend().evaluate(
            nl, stim, outputs=[f"p{w}" for w in range(2 * n)]
        )
        got = np.zeros_like(a)
        for w in range(2 * n):
            got |= out[f"p{w}"].astype(np.int64) << w
        assert np.array_equal(got, a * b)

    def test_accumulator_step_adds(self):
        n = 8
        nl = accumulator_step_netlist(n)
        rng = np.random.default_rng(0)
        acc = rng.integers(0, 1 << n, 512)
        b = rng.integers(0, 1 << n, 512)
        stim = {}
        for k in range(n):
            stim[f"acc{k}"] = ((acc >> k) & 1).astype(np.uint8)
            stim[f"b{k}"] = ((b >> k) & 1).astype(np.uint8)
        outs = [f"nxt{k}" for k in range(n)] + [f"c{n}"]
        out = BatchBackend().evaluate(nl, stim, outputs=outs)
        got = np.zeros_like(acc)
        for k in range(n):
            got |= out[f"nxt{k}"].astype(np.int64) << k
        got |= out[f"c{n}"].astype(np.int64) << n
        assert np.array_equal(got, acc + b)

    def test_multiplier_compiles_and_reports_timing(self):
        res = compile_to_fabric(array_multiplier_netlist(2), seed=0)
        assert res.timing.cycle_time >= res.timing.logic_delay > 0
        verify_equivalence(res, n_vectors=128, event_vectors=2)
