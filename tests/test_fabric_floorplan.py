"""Unit tests for the floorplanner (GALS variable-size module claim)."""

import pytest

from repro.fabric.floorplan import Floorplan, FloorplanError, Region


class TestRegion:
    def test_cells(self):
        assert Region("m", 0, 0, 3, 4).cells == 12

    def test_overlap_detection(self):
        a = Region("a", 0, 0, 2, 2)
        assert a.overlaps(Region("b", 1, 1, 2, 2))
        assert not a.overlaps(Region("c", 2, 0, 1, 1))
        assert not a.overlaps(Region("d", 0, 2, 2, 2))

    def test_validation(self):
        with pytest.raises(ValueError):
            Region("bad", 0, 0, 0, 1)
        with pytest.raises(ValueError):
            Region("bad", -1, 0, 1, 1)


class TestFloorplan:
    def test_allocate_and_utilisation(self):
        fp = Floorplan(4, 4)
        fp.allocate(Region("a", 0, 0, 2, 2))
        assert fp.used_cells == 4
        assert fp.utilisation == pytest.approx(0.25)

    def test_overlap_rejected(self):
        fp = Floorplan(4, 4)
        fp.allocate(Region("a", 0, 0, 2, 2))
        with pytest.raises(FloorplanError, match="overlaps"):
            fp.allocate(Region("b", 1, 1, 2, 2))

    def test_out_of_bounds_rejected(self):
        fp = Floorplan(4, 4)
        with pytest.raises(FloorplanError, match="exceeds"):
            fp.allocate(Region("a", 3, 3, 2, 2))

    def test_duplicate_name_rejected(self):
        fp = Floorplan(4, 4)
        fp.allocate(Region("a", 0, 0, 1, 1))
        with pytest.raises(FloorplanError, match="already"):
            fp.allocate(Region("a", 2, 2, 1, 1))

    def test_first_fit_packs_row_major(self):
        fp = Floorplan(4, 4)
        r1 = fp.allocate_anywhere("a", 2, 2)
        r2 = fp.allocate_anywhere("b", 2, 2)
        assert (r1.row, r1.col) == (0, 0)
        assert (r2.row, r2.col) == (0, 2)

    def test_first_fit_full_raises(self):
        fp = Floorplan(2, 2)
        fp.allocate_anywhere("a", 2, 2)
        with pytest.raises(FloorplanError, match="no free"):
            fp.allocate_anywhere("b", 1, 1)

    def test_release_reclaims_space(self):
        fp = Floorplan(2, 2)
        fp.allocate_anywhere("a", 2, 2)
        fp.release("a")
        assert fp.used_cells == 0
        fp.allocate_anywhere("b", 2, 2)  # fits again

    def test_release_unknown_raises(self):
        with pytest.raises(FloorplanError):
            Floorplan(2, 2).release("ghost")

    def test_largest_free_square(self):
        fp = Floorplan(4, 4)
        assert fp.largest_free_square() == 4
        fp.allocate(Region("a", 0, 0, 4, 2))
        assert fp.largest_free_square() == 2  # only the right half remains

    def test_internal_fragmentation(self):
        # The paper's page-size analogy: fixed 4x4 pages for a 10-cell
        # module waste 6/16 of the page.
        fp = Floorplan(8, 8)
        fp.allocate(Region("mod", 0, 0, 4, 4))
        frag = fp.internal_fragmentation({"mod": 10})
        assert frag == pytest.approx(6 / 16)

    def test_exact_fit_has_zero_fragmentation(self):
        fp = Floorplan(8, 8)
        fp.allocate(Region("mod", 0, 0, 2, 5))
        assert fp.internal_fragmentation({"mod": 10}) == 0.0

    def test_fragmentation_overclaim_rejected(self):
        fp = Floorplan(4, 4)
        fp.allocate(Region("mod", 0, 0, 1, 1))
        with pytest.raises(FloorplanError):
            fp.internal_fragmentation({"mod": 5})
