"""Integration tests: configured cell arrays lowered onto the simulator."""

import pytest

from repro.fabric.array import CellArray, ConfigurationError, wire_name
from repro.fabric.driver import DriverMode
from repro.fabric.nandcell import (
    CellConfig,
    Direction,
    InputSource,
    LfbPartner,
)
from repro.sim.values import ONE, X, Z, ZERO


def feedthrough_cell(column: int) -> CellConfig:
    """Row `column` passes input column `column` through non-inverted."""
    cfg = CellConfig().set_product(column, [column])
    cfg.drivers[column] = DriverMode.INVERT  # NAND + INVERT = buffer
    return cfg


class TestFeedthrough:
    def test_single_cell_feedthrough(self):
        arr = CellArray(1, 1)
        arr.set_cell(0, 0, feedthrough_cell(0))
        fab = arr.compile_into()
        sim = fab.sim
        sim.drive(wire_name(0, 0, 0), ONE)
        sim.run(until=20)
        assert sim.value(wire_name(0, 1, 0)) == ONE
        sim.drive(wire_name(0, 0, 0), ZERO)
        sim.run(until=40)
        assert sim.value(wire_name(0, 1, 0)) == ZERO

    def test_feedthrough_chain_across_cells(self):
        # The paper: any output line can be used as a data feed-through
        # from an adjacent cell — build a 4-cell east-going wire.
        arr = CellArray(1, 4)
        for c in range(4):
            arr.set_cell(0, c, feedthrough_cell(2))
        fab = arr.compile_into()
        sim = fab.sim
        sim.drive(wire_name(0, 0, 2), ONE)
        sim.run(until=50)
        assert sim.value(wire_name(0, 4, 2)) == ONE

    def test_north_direction_routing(self):
        arr = CellArray(2, 1)
        cfg = feedthrough_cell(1)
        cfg.directions[1] = Direction.NORTH
        arr.set_cell(0, 0, cfg)
        arr.set_cell(1, 0, feedthrough_cell(1))
        fab = arr.compile_into()
        sim = fab.sim
        sim.drive(wire_name(0, 0, 1), ONE)
        sim.run(until=50)
        # (0,0) drives north into (1,0)'s input line, which feeds east out.
        assert sim.value(wire_name(1, 1, 1)) == ONE

    def test_inverting_feedthrough(self):
        arr = CellArray(1, 1)
        cfg = CellConfig().set_product(0, [0])
        cfg.drivers[0] = DriverMode.BUFFER  # NAND + BUFFER = inverter
        arr.set_cell(0, 0, cfg)
        sim = arr.compile_into().sim
        sim.drive(wire_name(0, 0, 0), ONE)
        sim.run(until=20)
        assert sim.value(wire_name(0, 1, 0)) == ZERO


class TestTwoLevelLogic:
    """A cell pair = product plane + collector plane (6-in/6-out/6-pterm LUT)."""

    def build_xor_pair(self):
        # Columns of cell A: a, a', b, b' (complements provided externally).
        # Products: a.b' (row 0) and a'.b (row 1); cell B collects
        # f = NAND(row0', row1') = a.b' + a'.b = XOR.
        arr = CellArray(1, 2)
        a_cell = CellConfig()
        a_cell.set_product(0, [0, 3])  # a AND b'
        a_cell.set_product(1, [1, 2])  # a' AND b
        a_cell.drivers[0] = DriverMode.BUFFER  # pass the NAND (complement)
        a_cell.drivers[1] = DriverMode.BUFFER
        arr.set_cell(0, 0, a_cell)
        b_cell = CellConfig()
        b_cell.set_product(0, [0, 1])  # NAND of the two complement lines
        b_cell.drivers[0] = DriverMode.BUFFER
        arr.set_cell(0, 1, b_cell)
        return arr

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_xor(self, a, b):
        arr = self.build_xor_pair()
        sim = arr.compile_into().sim
        sim.drive(wire_name(0, 0, 0), a)
        sim.drive(wire_name(0, 0, 1), 1 - a)
        sim.drive(wire_name(0, 0, 2), b)
        sim.drive(wire_name(0, 0, 3), 1 - b)
        sim.run(until=50)
        assert sim.value(wire_name(0, 2, 0)) == (a ^ b)


class TestLocalFeedback:
    def build_sr_latch(self):
        # Single cell: row0 = NAND(s_n, qb) = q; row1 = NAND(r_n, q) = qb.
        # lfb0 taps row0 (q), lfb1 taps row1 (qb); columns 2/3 read them.
        arr = CellArray(1, 1)
        cfg = CellConfig()
        cfg.set_product(0, [0, 3])  # s_n AND qb
        cfg.set_product(1, [1, 2])  # r_n AND q
        cfg.lfb_taps[0] = 0
        cfg.lfb_taps[1] = 1
        cfg.input_select[2] = InputSource.LFB0  # column 2 = q
        cfg.input_select[3] = InputSource.LFB1  # column 3 = qb
        cfg.drivers[0] = DriverMode.BUFFER  # q out east
        cfg.drivers[1] = DriverMode.BUFFER  # qb out east
        arr.set_cell(0, 0, cfg)
        return arr

    def test_sr_latch_on_fabric(self):
        arr = self.build_sr_latch()
        sim = arr.compile_into().sim
        s_n, r_n = wire_name(0, 0, 0), wire_name(0, 0, 1)
        q, qb = wire_name(0, 1, 0), wire_name(0, 1, 1)
        sim.drive(s_n, ZERO)  # set
        sim.drive(r_n, ONE)
        sim.run(until=60)
        assert (sim.value(q), sim.value(qb)) == (ONE, ZERO)
        sim.drive(s_n, ONE)  # hold
        sim.run(until=120)
        assert (sim.value(q), sim.value(qb)) == (ONE, ZERO)
        sim.drive(r_n, ZERO)  # reset
        sim.run(until=180)
        assert (sim.value(q), sim.value(qb)) == (ZERO, ONE)

    def test_east_partner_feedback(self):
        # Cell A's column 5 reads cell B's lfb0 — the cell-pair feedback
        # path used by the flip-flop macros.
        arr = CellArray(1, 2)
        a_cell = feedthrough_cell(0)
        a_cell.input_select[5] = InputSource.LFB0
        a_cell.lfb_partner = LfbPartner.EAST
        a_cell.set_product(1, [5])
        a_cell.drivers[1] = DriverMode.INVERT  # pass B.lfb0 back out east
        arr.set_cell(0, 0, a_cell)
        b_cell = CellConfig().set_product(2, [0])  # row2 = NOT(A.out0)
        b_cell.lfb_taps[0] = 2
        arr.set_cell(0, 1, b_cell)
        sim = arr.compile_into().sim
        sim.drive(wire_name(0, 0, 0), ONE)
        sim.run(until=60)
        # A.out0 = 1 -> B.row2 = NOT 1 = 0 -> A reads 0, drives it on row 1.
        assert sim.value(wire_name(0, 1, 1)) == ZERO

    def test_missing_lfb_tap_rejected(self):
        arr = CellArray(1, 1)
        cfg = feedthrough_cell(0)
        cfg.input_select[3] = InputSource.LFB0  # no tap configured
        cfg.set_product(1, [3])
        cfg.drivers[1] = DriverMode.BUFFER
        arr.set_cell(0, 0, cfg)
        with pytest.raises(ConfigurationError, match="no tap"):
            arr.compile_into()

    def test_partner_outside_array_rejected(self):
        arr = CellArray(1, 1)
        cfg = feedthrough_cell(0)
        cfg.lfb_partner = LfbPartner.EAST
        cfg.input_select[3] = InputSource.LFB0
        cfg.set_product(1, [3])
        cfg.drivers[1] = DriverMode.BUFFER
        arr.set_cell(0, 0, cfg)
        with pytest.raises(ConfigurationError, match="outside"):
            arr.compile_into()


class TestBoundaryClassification:
    def test_inputs_and_outputs_found(self):
        arr = CellArray(1, 2)
        arr.set_cell(0, 0, feedthrough_cell(0))
        arr.set_cell(0, 1, feedthrough_cell(0))
        fab = arr.compile_into()
        assert wire_name(0, 0, 0) in fab.input_wires
        assert wire_name(0, 2, 0) in fab.output_wires

    def test_gate_count(self):
        arr = CellArray(1, 1)
        arr.set_cell(0, 0, feedthrough_cell(0))
        fab = arr.compile_into()
        assert fab.n_gates == 2  # one NAND row + one driver

    def test_blank_array_compiles_empty(self):
        fab = CellArray(2, 2).compile_into()
        assert fab.n_gates == 0
        assert fab.input_wires == [] and fab.output_wires == []


class TestArrayPlumbing:
    def test_cell_position_validated(self):
        arr = CellArray(2, 2)
        with pytest.raises(ValueError):
            arr.cell(5, 0)
        with pytest.raises(ValueError):
            arr.set_cell(0, 9, CellConfig())

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            CellArray(0, 3)

    def test_used_cells_and_leaf_count(self):
        arr = CellArray(2, 2)
        arr.set_cell(0, 0, feedthrough_cell(0))
        assert arr.used_cells() == 1
        assert arr.leaf_count() == feedthrough_cell(0).leaf_count()

    def test_bitstream_round_trip_preserves_behaviour(self):
        arr = CellArray(1, 1)
        cfg = CellConfig().set_product(0, [0, 1])
        cfg.drivers[0] = DriverMode.BUFFER
        arr.set_cell(0, 0, cfg)
        clone = CellArray.from_bitstream(arr.to_bitstream())
        sim = clone.compile_into().sim
        sim.drive(wire_name(0, 0, 0), ONE)
        sim.drive(wire_name(0, 0, 1), ONE)
        sim.run(until=20)
        assert sim.value(wire_name(0, 1, 0)) == ZERO

    def test_conflicting_drivers_resolve_to_x(self):
        # Two cells drive the same wire: west EAST-driver and south
        # NORTH-driver disagreeing must give X on the shared line.
        arr = CellArray(2, 2)
        west = feedthrough_cell(0)  # drives east into (1,1)... row 0
        arr.set_cell(1, 0, west)
        south = CellConfig().set_product(0, [0])
        south.drivers[0] = DriverMode.BUFFER  # inverting path
        south.directions[0] = Direction.NORTH
        arr.set_cell(0, 1, south)
        sim = arr.compile_into().sim
        sim.drive(wire_name(1, 0, 0), ONE)  # west chain input
        sim.drive(wire_name(0, 1, 0), ONE)  # south chain input
        sim.run(until=40)
        # West drives 1, south drives NOT(1)=0 onto w[1][1][0].
        assert sim.value(wire_name(1, 1, 0)) == X

    def test_unused_wire_floats(self):
        arr = CellArray(1, 1)
        cfg = feedthrough_cell(0)
        arr.set_cell(0, 0, cfg)
        sim = arr.compile_into().sim
        sim.run(until=10)
        # Output wire of an OFF driver row was never created/driven; the
        # driven row's wire carries X until the input is driven.
        assert sim.value(wire_name(0, 1, 0)) in (X, Z, ONE)
