"""Tests for the place-and-route subsystem (`repro.pnr`).

Covers each stage in isolation (tech-map rewrites, placement legality,
routing tree consistency) and the flow end to end: the Fig. 10 adder
slice re-compiled from its own lowered netlist, bitstream round trips,
floorplan-region co-residency, and a property-style sweep of random
combinational netlists verified against both simulation backends on
over a thousand random vectors.
"""

import random

import numpy as np
import pytest

from repro.fabric.array import CellArray
from repro.fabric.floorplan import Floorplan, Region
from repro.netlist import BatchBackend, EventBackend, Netlist
from repro.pnr import (
    PlacementError,
    PnrError,
    TechMapError,
    VerificationError,
    anneal_placement,
    compile_to_fabric,
    dominance_violations,
    gate_levels,
    hpwl,
    initial_placement,
    map_netlist,
    suggest_array,
    verify_equivalence,
)
from repro.sim.values import ONE, ZERO, X


def one_bit_adder() -> Netlist:
    nl = Netlist("fa1")
    a, b, c = (nl.add_input(x) for x in "abc")
    nl.add("xor", "x1", [a, b], "t")
    nl.add("xor", "x2", ["t", c], nl.add_output("s"))
    nl.add("and", "a1", [a, b], "ab")
    nl.add("and", "a2", ["t", c], "tc")
    nl.add("or", "o1", ["ab", "tc"], nl.add_output("cout"))
    return nl


def random_netlist(seed: int, n_inputs: int = 4) -> Netlist:
    """A random combinational netlist over the full two-valued vocabulary."""
    rng = random.Random(seed)
    kinds = ["nand", "and", "or", "nor", "xor", "not", "buf"]
    nl = Netlist(f"rand{seed}")
    nets = [nl.add_input(f"i{k}").name for k in range(n_inputs)]
    for g in range(rng.randint(5, 16)):
        kind = rng.choice(kinds)
        n_in = {"xor": 2, "not": 1, "buf": 1}.get(kind, rng.randint(1, 3))
        nl.add(kind, f"g{g}", [rng.choice(nets) for _ in range(n_in)], f"n{g}")
        nets.append(f"n{g}")
    for net in nets[-3:]:
        nl.add_output(net)
    return nl


# ----------------------------------------------------------------------
# Stage 1: tech map
# ----------------------------------------------------------------------

class TestTechMap:
    def test_nand_fabric_vocabulary_only(self):
        design = map_netlist(one_bit_adder())
        assert set(g.kind for g in design.gates.values()) <= {"nand", "and", "const"}

    def test_complements_are_shared(self):
        nl = Netlist("share")
        a, b = nl.add_input("a"), nl.add_input("b")
        nl.add("or", "o1", [a, b], nl.add_output("x"))
        nl.add("nor", "o2", [a, b], nl.add_output("y"))
        design = map_netlist(nl)
        inverters = [
            g for g in design.gates.values()
            if g.kind == "nand" and g.inputs in (("a",), ("b",))
        ]
        assert len(inverters) == 2  # one per variable, not one per use

    def test_wide_products_split(self):
        nl = Netlist("wide")
        ins = [nl.add_input(f"i{k}") for k in range(9)]
        nl.add("nand", "g", ins, nl.add_output("y"))
        design = map_netlist(nl)
        assert all(len(g.inputs) <= 6 for g in design.gates.values())
        assert design.n_gates >= 2

    def test_dead_gates_pruned(self):
        nl = Netlist("dead")
        a = nl.add_input("a")
        nl.add("not", "live", [a], nl.add_output("y"))
        nl.add("not", "dead", [a], "unused")
        design = map_netlist(nl)
        assert design.n_gates == 1

    def test_tristate_rejected(self):
        nl = Netlist("bus")
        a, en = nl.add_input("a"), nl.add_input("en")
        nl.add("tristate", "t", [a, en], nl.add_output("y"))
        with pytest.raises(TechMapError):
            map_netlist(nl)

    def test_multi_driven_rejected(self):
        nl = Netlist("short")
        a, b = nl.add_input("a"), nl.add_input("b")
        nl.add("buf", "d1", [a], "y")
        nl.add("buf", "d2", [b], "y")
        nl.add_output("y")
        with pytest.raises(TechMapError):
            map_netlist(nl)

    def test_celement_reset_rail(self):
        nl = Netlist("ce")
        a, b = nl.add_input("a"), nl.add_input("b")
        nl.add("celement", "c", [a, b], nl.add_output("y"), init=ZERO)
        design = map_netlist(nl)
        assert design.reset_net is not None
        assert design.reset_net in design.inputs
        (gate,) = [g for g in design.gates.values() if g.kind == "celement"]
        assert gate.inputs[-1] == design.reset_net

    def test_celement_init_x_needs_no_reset(self):
        nl = Netlist("cex")
        a, b = nl.add_input("a"), nl.add_input("b")
        nl.add("celement", "c", [a, b], nl.add_output("y"), init=X)
        assert map_netlist(nl).reset_net is None

    def test_bad_init_rejected(self):
        nl = Netlist("ce1")
        a, b = nl.add_input("a"), nl.add_input("b")
        nl.add("celement", "c", [a, b], nl.add_output("y"), init=ONE)
        with pytest.raises(TechMapError):
            map_netlist(nl)

    def test_table_lowering_matches_function(self):
        nl = Netlist("maj")
        ins = [nl.add_input(f"i{k}") for k in range(3)]
        nl.add("table", "m", ins, nl.add_output("y"), table=[0, 0, 0, 1, 0, 1, 1, 1])
        res = compile_to_fabric(nl, seed=0)
        verify_equivalence(res, n_vectors=256, event_vectors=4)


# ----------------------------------------------------------------------
# Stage 2: placement
# ----------------------------------------------------------------------

class TestPlacement:
    def test_greedy_is_legal_and_disjoint(self):
        design = map_netlist(one_bit_adder())
        region = Region("r", 1, 2, 10, 10)
        placement = initial_placement(design, region, random.Random(0))
        assert dominance_violations(design, placement) == 0
        cells = [
            cell
            for g in design.gates.values()
            for cell in placement.cells_of(g)
        ]
        assert len(cells) == len(set(cells))
        for r, c in cells:
            assert 1 <= r < 11 and 2 <= c < 12

    def test_anneal_preserves_legality_and_hpwl(self):
        design = map_netlist(random_netlist(3))
        arr = suggest_array(design)
        region = Region("r", 0, 0, arr.n_rows, arr.n_cols)
        rng = random.Random(0)
        seed_placement = initial_placement(design, region, rng)
        h0 = hpwl(design, seed_placement)
        refined = anneal_placement(design, seed_placement, rng)
        assert dominance_violations(design, refined) == 0
        assert hpwl(design, refined) <= h0

    def test_region_too_small(self):
        design = map_netlist(one_bit_adder())
        with pytest.raises(PlacementError):
            initial_placement(design, Region("r", 0, 0, 2, 2), random.Random(0))

    def test_grid_feedback_rejected(self):
        nl = Netlist("loop")
        a = nl.add_input("a")
        nl.add("nand", "g1", [a, "f2"], "f1")
        nl.add("nand", "g2", ["f1"], "f2")
        nl.add_output("f1")
        with pytest.raises(PlacementError):
            gate_levels(map_netlist(nl))

    def test_self_loop_rejected(self):
        nl = Netlist("self")
        a = nl.add_input("a")
        nl.add("nand", "g", [a, "y"], nl.add_output("y"))
        with pytest.raises(PlacementError, match="reads its own output"):
            gate_levels(map_netlist(nl))
        with pytest.raises(PnrError):
            compile_to_fabric(nl)


# ----------------------------------------------------------------------
# Stages 3+4 through the flow
# ----------------------------------------------------------------------

class TestCompileFlow:
    def test_fig10_adder_slice(self):
        """Acceptance: the Fig. 10 slice places, routes, and verifies."""
        from repro.synth.macros import full_adder_testbench

        source, stimulus, golden = full_adder_testbench()
        res = compile_to_fabric(source, seed=0)
        assert res.stats.routed_fraction == 1.0
        verify_equivalence(res, n_vectors=512, event_vectors=8)
        # The paper's 8 complement-consistent patterns, bit for bit.
        fabric = res.fabric_netlist().netlist
        stim = {res.input_wires[k]: v for k, v in stimulus.items()}
        got = BatchBackend().evaluate(
            fabric, stim, outputs=[res.output_wires[n] for n in golden]
        )
        for name, want in golden.items():
            assert np.array_equal(got[res.output_wires[name]], want)

    def test_bitstream_round_trip(self):
        res = compile_to_fabric(one_bit_adder(), seed=0)
        clone = CellArray.from_bitstream(res.to_bitstream())
        rng = np.random.default_rng(1)
        stim = {
            res.input_wires[n]: rng.integers(0, 2, 64, dtype=np.uint8)
            for n in ("a", "b", "c")
        }
        original = BatchBackend().evaluate(
            res.fabric_netlist().netlist, stim,
            outputs=list(res.output_wires.values()),
        )
        rebuilt = BatchBackend().evaluate(
            clone.to_netlist().netlist, stim,
            outputs=list(res.output_wires.values()),
        )
        for wire in res.output_wires.values():
            assert np.array_equal(original[wire], rebuilt[wire])

    def test_routing_is_nand_buffer_feedthrough(self):
        """Routed cells are single-input NAND rows with INVERT drivers."""
        from repro.fabric.driver import DriverMode

        res = compile_to_fabric(one_bit_adder(), seed=0)
        assert res.stats.cells_route > 0 or res.stats.wirelength > 0
        placed = {
            cell
            for g in res.design.gates.values()
            for cell in res.placement.cells_of(g)
        }
        route_only = 0
        for r in range(res.array.n_rows):
            for c in range(res.array.n_cols):
                cfg = res.array.cell(r, c)
                if cfg.is_blank() or (r, c) in placed:
                    continue
                route_only += 1
                for row in cfg.used_rows():
                    assert len(cfg.active_columns(row)) == 1
                    assert cfg.drivers[row] is DriverMode.INVERT
        assert route_only == res.stats.cells_route

    def test_two_regions_share_one_array(self):
        array = CellArray(16, 16)
        plan = Floorplan(16, 16)
        r1 = plan.allocate_anywhere("mod1", 8, 8)
        r2 = plan.allocate_anywhere("mod2", 8, 8)
        res1 = compile_to_fabric(one_bit_adder(), array, region=r1, seed=0)
        res2 = compile_to_fabric(one_bit_adder(), array, region=r2, seed=3)
        verify_equivalence(res1, n_vectors=64, event_vectors=2)
        verify_equivalence(res2, n_vectors=64, event_vectors=2)

    def test_region_must_be_blank(self):
        array = CellArray(12, 12)
        compile_to_fabric(one_bit_adder(), array, seed=0)
        with pytest.raises(PnrError):
            compile_to_fabric(one_bit_adder(), array, seed=0)

    def test_input_passthrough_to_output(self):
        nl = Netlist("pass")
        p = nl.add_input("p")
        nl.add_output("p")
        nl.add("not", "inv", [p], nl.add_output("q"))
        res = compile_to_fabric(nl, seed=0)
        verify_equivalence(res, n_vectors=64, event_vectors=4)

    def test_deterministic_for_a_seed(self):
        res1 = compile_to_fabric(one_bit_adder(), seed=5)
        res2 = compile_to_fabric(one_bit_adder(), seed=5)
        assert res1.placement.positions == res2.placement.positions
        assert res1.input_wires == res2.input_wires
        assert np.array_equal(res1.to_bitstream(), res2.to_bitstream())

    def test_stats_account_cells(self):
        res = compile_to_fabric(one_bit_adder(), seed=0)
        s = res.stats
        assert s.cells_logic == sum(g.width for g in res.design.gates.values())
        assert s.cells_used == res.array.used_cells()
        assert s.area.interconnect_l2 == pytest.approx(s.cells_route * 200.0)
        assert 0 < s.utilisation <= 1

    def test_unmappable_designs_raise_pnr_error(self):
        """compile_to_fabric wraps every failure mode in PnrError."""
        bus = Netlist("bus")
        a, en = bus.add_input("a"), bus.add_input("en")
        bus.add("tristate", "t", [a, en], bus.add_output("y"))
        with pytest.raises(PnrError):
            compile_to_fabric(bus)
        loop = Netlist("loop")
        x = loop.add_input("x")
        loop.add("nand", "g1", [x, "f2"], "f1")
        loop.add("nand", "g2", ["f1"], "f2")
        loop.add_output("f1")
        with pytest.raises(PnrError):
            compile_to_fabric(loop)

    def test_eventlatch_init_zero_needs_no_reset_rail(self):
        """A lone capture-pass latch inits through transparency: no rail."""
        nl = Netlist("lat")
        d, r, a = (nl.add_input(x) for x in ("d", "r", "a"))
        nl.add("eventlatch", "l", [d, r, a], nl.add_output("z"), init=ZERO)
        res = compile_to_fabric(nl, seed=0)
        assert res.reset_wire is None
        assert res.design.reset_net is None
        # Every design input is either routed or genuinely unused.
        assert set(res.input_wires) == {"d", "r", "a"}

    def test_constant_only_design_verifies(self):
        nl = Netlist("consts")
        nl.add("const", "k1", [], nl.add_output("hi"), value=1)
        nl.add("const", "k0", [], "lo", value=0)
        nl.add("not", "inv", ["lo"], nl.add_output("lo_n"))
        res = compile_to_fabric(nl, seed=0)
        report = verify_equivalence(res, n_vectors=16)
        assert report["ok"] and report["outputs"] == 2

    def test_verify_rejects_stateful(self):
        nl = Netlist("ce")
        a, b = nl.add_input("a"), nl.add_input("b")
        nl.add("celement", "c", [a, b], nl.add_output("y"), init=X)
        res = compile_to_fabric(nl, seed=0)
        with pytest.raises(VerificationError):
            verify_equivalence(res, n_vectors=8)


# ----------------------------------------------------------------------
# Property-style: random netlists round-trip on >= 1000 vectors
# ----------------------------------------------------------------------

class TestPropertyRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_combinational_round_trip(self, seed):
        source = random_netlist(seed)
        res = compile_to_fabric(source, seed=seed)
        report = verify_equivalence(res, n_vectors=1024, event_vectors=2)
        assert report["ok"] and report["vectors_batch"] >= 1000

    def test_ripple_carry_adder_adds(self):
        from repro.datapath.adder import ripple_carry_netlist

        nl = ripple_carry_netlist(4)
        res = compile_to_fabric(nl, seed=0)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 16, 256)
        b = rng.integers(0, 16, 256)
        stim = {"cin": np.zeros(256, dtype=np.uint8)}
        for k in range(4):
            stim[f"a{k}"] = ((a >> k) & 1).astype(np.uint8)
            stim[f"b{k}"] = ((b >> k) & 1).astype(np.uint8)
        fabric = res.fabric_netlist().netlist
        fab_stim = {res.input_wires[n]: v for n, v in stim.items()}
        out = BatchBackend().evaluate(
            fabric, fab_stim, outputs=list(res.output_wires.values())
        )
        total = np.zeros(256, dtype=np.int64)
        for k in range(4):
            total |= out[res.output_wires[f"s{k}"]].astype(np.int64) << k
        total |= out[res.output_wires["c4"]].astype(np.int64) << 4
        assert np.array_equal(total, a + b)


# ----------------------------------------------------------------------
# Stateful: a micropipeline stage on the fabric
# ----------------------------------------------------------------------

class TestMicropipelineOnFabric:
    def test_stage_matches_behavioural_sequence(self):
        from repro.asynclogic.micropipeline import micropipeline_netlist

        source, _ports = micropipeline_netlist(1, data_width=2, auto_sink=False)
        res = compile_to_fabric(source, seed=0)
        assert res.reset_wire is not None

        ref = EventBackend().elaborate(source)
        fab = EventBackend().elaborate(res.fabric_netlist().netlist)

        def drive(name, value):
            ref.drive(name, value)
            fab.drive(res.input_wires[name], value)

        def settle_and_compare(tag):
            ref.run_to_quiescence(max_time=ref.now + 10_000)
            fab.run_to_quiescence(max_time=fab.now + 10_000)
            for net in source.outputs:
                assert ref.value(net) == fab.value(res.output_wires[net]), (
                    f"{tag}: {net}"
                )

        # Power-on: hold the synthesised reset low, everything else 0.
        fab.drive(res.reset_wire, ZERO)
        for name in ("req_in", "ack_out", "din[0]", "din[1]"):
            drive(name, ZERO)
        ref.run_to_quiescence(max_time=10_000)
        fab.run_to_quiescence(max_time=10_000)
        fab.drive(res.reset_wire, ONE)
        settle_and_compare("after reset")
        # Two-phase token traffic: data, request toggle, acknowledge.
        for name, value in (
            ("din[1]", ONE),
            ("req_in", ONE),
            ("ack_out", ONE),
            ("din[0]", ONE),
            ("din[1]", ZERO),
            ("req_in", ZERO),
        ):
            drive(name, value)
            settle_and_compare(f"{name}={value}")

    def test_celement_on_fabric(self):
        nl = Netlist("ce")
        a, b = nl.add_input("a"), nl.add_input("b")
        nl.add("celement", "c", [a, b], nl.add_output("y"), init=ZERO)
        res = compile_to_fabric(nl, seed=0)
        sim = EventBackend().elaborate(res.fabric_netlist().netlist)
        wa, wb = res.input_wires["a"], res.input_wires["b"]
        wy = res.output_wires["y"]
        sim.drive(res.reset_wire, ZERO)
        sim.drive(wa, ZERO)
        sim.drive(wb, ZERO)
        sim.run_to_quiescence(max_time=5_000)
        sim.drive(res.reset_wire, ONE)
        sequence = [
            (ONE, ZERO, ZERO),   # disagree: holds 0
            (ONE, ONE, ONE),     # agree: follows to 1
            (ZERO, ONE, ONE),    # disagree: holds 1
            (ZERO, ZERO, ZERO),  # agree: follows to 0
        ]
        for va, vb, want in sequence:
            sim.drive(wa, va)
            sim.drive(wb, vb)
            sim.run_to_quiescence(max_time=sim.now + 5_000)
            assert sim.value(wy) == want
