"""Property tests for the canonical netlist content hash.

The compile service keys its result cache on
:func:`repro.netlist.canonical_hash` — so these tests are the proof
obligations behind every cache hit: the hash must collapse all
spellings of one circuit (insertion order, names, commutative pin
order) onto one key, and must never collapse two different circuits or
two different compile option sets onto one key on the tested corpus.

The hypothesis strategy draws an abstract *circuit description* (a DAG
of kinds over numbered nets) and realises it as a concrete
:class:`~repro.netlist.Netlist` under a chosen cell order and naming —
so invariance properties compare two realisations of provably the same
circuit, and perturbation properties change the description itself.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datapath.accumulator import accumulator_step_netlist
from repro.datapath.adder import ripple_carry_netlist
from repro.datapath.multiplier import array_multiplier_netlist
from repro.netlist import CANONICAL_HASH_VERSION, Netlist, canonical_hash
from repro.service import CompileOptions

_KINDS = ("nand", "and", "or", "nor", "xor", "not", "buf")
_ARITY = {"xor": 2, "not": 1, "buf": 1}


@st.composite
def circuits(draw):
    """An abstract DAG: (n_inputs, [(kind, input net indices)], outputs).

    Net ``j`` is primary input ``j`` when ``j < n_inputs``, else the
    output of gate ``j - n_inputs``; gate ``i`` may only read nets
    ``< n_inputs + i``, so every realisation is acyclic.
    """
    n_in = draw(st.integers(1, 4))
    n_gates = draw(st.integers(1, 12))
    gates = []
    for i in range(n_gates):
        kind = draw(st.sampled_from(_KINDS))
        arity = _ARITY.get(kind) or draw(st.integers(2, 3))
        avail = n_in + i
        ins = tuple(
            draw(st.integers(0, avail - 1)) for _ in range(arity)
        )
        gates.append((kind, ins))
    n_out = draw(st.integers(1, min(3, n_gates)))
    outs = tuple(
        draw(
            st.lists(
                st.integers(n_in, n_in + n_gates - 1),
                min_size=n_out,
                max_size=n_out,
                unique=True,
            )
        )
    )
    return (n_in, tuple(gates), outs)


def realize(desc, order=None, rename=None):
    """Build a concrete netlist from a description.

    ``order`` permutes the cell insertion sequence; ``rename`` maps
    every net and cell name bijectively.  Port declaration *order* is
    always the description's (position is identity for ports).
    """
    n_in, gates, outs = desc
    rename = rename or (lambda s: s)

    def net(j):
        return rename(f"i{j}") if j < n_in else rename(f"n{j}")

    nl = Netlist("t")
    for j in range(n_in):
        nl.add_input(net(j))
    for o in outs:
        nl.add_output(net(o))
    for gi in order if order is not None else range(len(gates)):
        kind, ins = gates[gi]
        nl.add(kind, rename(f"g{gi}"), [net(j) for j in ins], net(n_in + gi))
    return nl


@settings(max_examples=60, deadline=None)
@given(circuits(), st.randoms(use_true_random=False))
def test_hash_invariant_under_insertion_order(desc, rnd):
    order = list(range(len(desc[1])))
    rnd.shuffle(order)
    assert canonical_hash(realize(desc)) == canonical_hash(
        realize(desc, order=order)
    )


@settings(max_examples=60, deadline=None)
@given(circuits(), st.integers(0, 2**32))
def test_hash_invariant_under_renaming(desc, salt):
    renamed = canonical_hash(
        realize(desc, rename=lambda s: f"q{salt}_{s}_z")
    )
    assert canonical_hash(realize(desc)) == renamed


@settings(max_examples=60, deadline=None)
@given(circuits(), st.randoms(use_true_random=False), st.integers(0, 2**32))
def test_hash_invariant_under_order_and_rename_together(desc, rnd, salt):
    order = list(range(len(desc[1])))
    rnd.shuffle(order)
    both = realize(desc, order=order, rename=lambda s: f"r{salt}.{s}")
    assert canonical_hash(realize(desc)) == canonical_hash(both)


@settings(max_examples=60, deadline=None)
@given(circuits(), st.data())
def test_distinct_logic_never_collides(desc, data):
    """Flipping one gate's kind is a different circuit, never a collision."""
    n_in, gates, outs = desc
    gi = data.draw(st.integers(0, len(gates) - 1))
    kind, ins = gates[gi]
    # A kind with the same arity but a different function.
    pool = [
        k
        for k in _KINDS
        if k != kind and (_ARITY.get(k) or len(ins)) == len(ins)
    ]
    if not pool:
        return
    flipped = list(gates)
    flipped[gi] = (data.draw(st.sampled_from(pool)), ins)
    assert canonical_hash(realize(desc)) != canonical_hash(
        realize((n_in, tuple(flipped), outs))
    )


def test_commutative_pin_swap_keeps_hash():
    a = Netlist("a")
    a.add("nand", "g", [a.add_input("x"), a.add_input("y")], a.add_output("o"))
    b = Netlist("b")
    x, y = b.add_input("x"), b.add_input("y")
    b.add("nand", "g", [y, x], b.add_output("o"))
    assert canonical_hash(a) == canonical_hash(b)


def test_positional_kind_pin_swap_changes_hash():
    """table pins are positional: swapping them changes the function."""

    def tbl(order):
        nl = Netlist("t")
        x, y = nl.add_input("x"), nl.add_input("y")
        ins = [x, y] if order else [y, x]
        # An asymmetric function: o = x AND NOT y.
        nl.add("table", "g", ins, nl.add_output("o"), table=(0, 0, 1, 0))
        return nl

    assert canonical_hash(tbl(True)) != canonical_hash(tbl(False))


def test_params_and_delay_feed_the_hash():
    def const(value):
        nl = Netlist("c")
        nl.add("const", "g", [], nl.add_output("o"), value=value)
        return nl

    assert canonical_hash(const(0)) != canonical_hash(const(1))

    def delayed(d):
        nl = Netlist("d")
        nl.add("not", "g", [nl.add_input("x")], nl.add_output("o"), delay=d)
        return nl

    assert canonical_hash(delayed(1)) != canonical_hash(delayed(3))


def test_port_position_is_identity_not_name():
    """Swapping which *position* a port sits at is a different interface."""

    def ordered(swap):
        nl = Netlist("p")
        names = ["x", "y"] if not swap else ["y", "x"]
        for n in names:
            nl.add_input(n)
        # y = x, an asymmetric use of the two ports.
        nl.add("buf", "g", ["x"], nl.add_output("o"))
        return nl

    assert canonical_hash(ordered(False)) != canonical_hash(ordered(True))


def test_undeclared_free_nets_hash_by_name():
    """Documented caveat: only *declared* ports are spelling-free."""

    def free(name):
        nl = Netlist("f")
        nl.add("buf", "g", [name], nl.add_output("o"))
        return nl

    assert canonical_hash(free("a")) != canonical_hash(free("b"))


def test_cyclic_netlists_hash_deterministically():
    def ring(rename=lambda s: s):
        nl = Netlist("ring")
        nl.add("celement", rename("c1"), [rename("x"), rename("fb")], rename("m"))
        nl.add("not", rename("g"), [rename("m")], rename("fb"))
        nl.add_input(rename("x"))
        nl.add_output(rename("m"))
        return nl

    h = canonical_hash(ring())
    assert h == canonical_hash(ring())
    assert h == canonical_hash(ring(rename=lambda s: f"zz_{s}"))
    # Breaking the cycle is a different circuit.
    acyclic = Netlist("ring")
    acyclic.add("celement", "c1", ["x", "y"], "m")
    acyclic.add("not", "g", ["m"], "fb")
    acyclic.add_input("x")
    acyclic.add_output("m")
    assert h != canonical_hash(acyclic)


def test_corpus_is_collision_free_and_stable():
    designs = [
        ripple_carry_netlist(2),
        ripple_carry_netlist(4),
        ripple_carry_netlist(8),
        accumulator_step_netlist(4),
        array_multiplier_netlist(2),
        array_multiplier_netlist(3),
    ]
    hashes = [canonical_hash(nl) for nl in designs]
    assert len(set(hashes)) == len(hashes)
    # Stable across a rebuild of the same generators.
    rebuilt = [
        ripple_carry_netlist(2),
        ripple_carry_netlist(4),
        ripple_carry_netlist(8),
        accumulator_step_netlist(4),
        array_multiplier_netlist(2),
        array_multiplier_netlist(3),
    ]
    assert hashes == [canonical_hash(nl) for nl in rebuilt]


def test_compile_options_never_collide():
    """Every result-affecting knob splits the cache key."""
    base = CompileOptions()
    variants = [
        CompileOptions(seed=1),
        CompileOptions(anneal_steps=10),
        CompileOptions(max_attempts=3),
        CompileOptions(timing_driven=True),
        CompileOptions(timing_weight=3.0),
        CompileOptions(target_period=40),
        CompileOptions(shards=2),
        CompileOptions(max_side=12),
        CompileOptions(replicas=2),
    ]
    keys = [base.key()] + [v.key() for v in variants]
    assert len(set(keys)) == len(keys)
    # and the key is pinned to the hash version, so bumping the hash
    # construction invalidates option keys too.
    assert CANONICAL_HASH_VERSION in base.key()


def test_hash_is_pure():
    nl = ripple_carry_netlist(4)
    random.seed(123)  # global RNG state must not leak into the digest
    h1 = canonical_hash(nl)
    random.seed(456)
    assert h1 == canonical_hash(nl)
