"""The persisted artifact store: the ISSUE 9 acceptance contract.

Three layers of proof:

* **store unit** — `ArtifactStore` alone: content addressing, LRU /
  size-budget eviction with exact books (``lookups == hits + misses``,
  mirroring :class:`repro.service.ResultCache`), atomic re-publication,
  and the corruption contract (a truncated or bit-flipped blob is
  quarantined and served as a plain miss, never an exception);
* **blob serialisation** — ``PnrResult.to_blob`` /
  ``ShardedPnrResult.to_blob`` round-trip byte-identically and reject
  foreign, truncated and cross-typed blobs;
* **cross-process round-trip** — a second :class:`CompileService` on
  the same store directory (same process, and one *real* subprocess)
  serves a previously compiled rca8 and a repaired die byte-identical
  with ``compiles == 0``, single-flight coalescing preserved across
  tiers, and corruption degrading to a clean recompile.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.datapath.adder import ripple_carry_netlist
from repro.netlist import Netlist
from repro.pnr import (
    PnrResult,
    ShardedPnrResult,
    compile_sharded,
    compile_to_fabric,
    sample_defect_map,
)
from repro.service import CompileOptions, CompileService
from repro.service.store import (
    ArtifactStore,
    StoreKeyError,
    decode_key,
    encode_key,
    key_digest,
)


# ---------------------------------------------------------------------------
# store unit
# ---------------------------------------------------------------------------

def test_key_codec_round_trips_nested_tuples():
    key = ("h", ("opts", 1, 0, None, True, 2.5), ("die", "abc"))
    assert decode_key(encode_key(key)) == key
    # The digest is a pure function of the key, not of the instance.
    assert key_digest(key) == key_digest(decode_key(encode_key(key)))


def test_unencodable_key_raises_store_key_error(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(StoreKeyError):
        store.put(("bad", object()), 1)
    with pytest.raises(StoreKeyError):
        store.put(("bad", [1, 2]), 1)  # lists are reserved for tuples


def test_put_get_and_fresh_instance_round_trip(tmp_path):
    store = ArtifactStore(tmp_path)
    key = ("hash", ("opts", 3, 0, None))
    assert store.put(key, {"cycle": 141, "routes": (1, 2)}) == []
    assert store.get(key) == {"cycle": 141, "routes": (1, 2)}
    # A different instance on the same root — "another process".
    again = ArtifactStore(tmp_path)
    assert again.get(key) == {"cycle": 141, "routes": (1, 2)}
    assert key in again
    assert ("other",) not in again


def test_lru_eviction_by_entries_with_recency_bump(tmp_path):
    store = ArtifactStore(tmp_path, max_entries=2)
    store.put(("a",), 1)
    store.put(("b",), 2)
    store.get(("a",))  # bump: a is now most-recent, b is the LRU
    assert store.put(("c",), 3) == [("b",)]
    assert store.get(("b",)) is None
    assert store.get(("a",)) == 1
    assert store.keys()[-1] == ("a",)  # keys() is LRU -> MRU


def test_byte_budget_eviction_and_oversize_refusal(tmp_path):
    store = ArtifactStore(tmp_path, max_bytes=2_000)
    store.put(("small1",), b"x" * 400)
    store.put(("small2",), b"y" * 400)
    # A blob alone exceeding the budget is refused, not stored, and
    # must not evict what's there.
    assert store.put(("huge",), b"z" * 5_000) == []
    assert store.stats()["oversize"] == 1
    assert len(store) == 2
    # Filling past the budget evicts oldest-first until it holds.
    evicted = store.put(("small3",), b"w" * 1_200)
    assert evicted == [("small1",)]
    assert store.size_bytes() <= 2_000


def test_zero_capacity_store_drops_every_put(tmp_path):
    store = ArtifactStore(tmp_path, max_entries=0)
    assert store.put(("k",), 1) == []
    assert len(store) == 0
    assert store.get(("k",)) is None
    s = store.stats()
    assert (s["oversize"], s["insertions"]) == (1, 0)


def test_republish_refreshes_bytes_and_recency(tmp_path):
    store = ArtifactStore(tmp_path, max_entries=2)
    store.put(("a",), 1)
    store.put(("b",), 2)
    store.put(("a",), 10)  # refresh: a becomes MRU, no eviction
    assert store.stats()["evictions"] == 0
    assert store.put(("c",), 3) == [("b",)]
    assert store.get(("a",)) == 10


def test_accounting_identity_and_stats_shape(tmp_path):
    store = ArtifactStore(tmp_path, max_entries=8)
    store.put(("a",), 1)
    store.get(("a",))
    store.get(("missing",))
    store.peek(("a",))  # peek never counts
    s = store.stats()
    assert s["lookups"] == s["hits"] + s["misses"] == 2
    assert (s["hits"], s["misses"], s["insertions"]) == (1, 1, 1)
    assert s["entries"] == 1 and s["bytes"] > 0


@pytest.mark.parametrize("spoil", ["truncate", "bitflip", "garbage"])
def test_corrupt_blob_is_quarantined_as_a_miss(tmp_path, spoil):
    store = ArtifactStore(tmp_path)
    key = ("hash", ("opts", 0))
    store.put(key, {"cycle": 141})
    path = store.path_of(key)
    blob = path.read_bytes()
    if spoil == "truncate":
        path.write_bytes(blob[: len(blob) // 2])
    elif spoil == "bitflip":
        flipped = bytearray(blob)
        flipped[-1] ^= 0x40  # flip a payload bit under the digest
        path.write_bytes(bytes(flipped))
    else:
        path.write_bytes(b"not a blob at all")
    assert store.get(key) is None  # a miss, never an exception
    s = store.stats()
    assert s["quarantined"] == 1 and s["misses"] == 1
    assert not path.exists()  # moved aside: the next get is a clean miss
    assert len(list((tmp_path / "quarantine").iterdir())) == 1
    # The slot is reusable: a fresh publication round-trips again.
    store.put(key, {"cycle": 142})
    assert store.get(key) == {"cycle": 142}


def test_publication_is_byte_deterministic(tmp_path):
    a = ArtifactStore(tmp_path / "a")
    b = ArtifactStore(tmp_path / "b")
    key = ("h", ("opts", 1))
    value = {"routes": (1, 2, 3), "wires": {"s0": "w_0_1"}}
    a.put(key, value)
    b.put(key, value)
    assert a.path_of(key).read_bytes() == b.path_of(key).read_bytes()


# ---------------------------------------------------------------------------
# result blob serialisation
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def rca4_result():
    return compile_to_fabric(ripple_carry_netlist(4), seed=0, workers=0)


def test_pnr_result_blob_round_trip_is_byte_identical(rca4_result):
    blob = rca4_result.to_blob()
    back = PnrResult.from_blob(blob)
    assert back.to_bitstream().tobytes() == rca4_result.to_bitstream().tobytes()
    assert back.input_wires == rca4_result.input_wires
    assert back.stats == rca4_result.stats
    # Determinism through the round trip: re-serialising reproduces
    # the identical blob, so store re-publication is byte-stable.
    assert back.to_blob() == blob


def test_sharded_result_blob_round_trip():
    sharded = compile_sharded(ripple_carry_netlist(8), 2, seed=0, workers=0)
    back = ShardedPnrResult.from_blob(sharded.to_blob())
    assert [s.tobytes() for s in back.to_bitstreams()] == [
        s.tobytes() for s in sharded.to_bitstreams()
    ]


def test_blob_decode_rejects_defects(rca4_result):
    blob = rca4_result.to_blob()
    with pytest.raises(ValueError):
        PnrResult.from_blob(blob[: len(blob) // 2])  # truncated
    with pytest.raises(ValueError):
        PnrResult.from_blob(b"junk")  # not a pickle
    with pytest.raises(ValueError):
        ShardedPnrResult.from_blob(blob)  # cross-typed
    import pickle

    with pytest.raises(ValueError):
        PnrResult.from_blob(pickle.dumps({"no": "envelope"}))


# ---------------------------------------------------------------------------
# the service's persisted tier
# ---------------------------------------------------------------------------

def _rca8():
    return ripple_carry_netlist(8)


def _stress_die(seed=0):
    # rca8's golden array is 31x31; the rates match the ISSUE 8 stress
    # fixtures — a handful of defects, warm-repairable.
    return sample_defect_map(
        31, 31, cell_fail=0.0015, wire_fail=0.0006, stuck_fail=0.0006,
        seed=seed,
    )


def test_cross_process_round_trip_rca8_and_repaired_die(tmp_path):
    """The headline acceptance pin: restart-and-serve with zero compiles."""
    die = _stress_die(7)
    with CompileService(workers=0, store=tmp_path) as first:
        golden = first.compile(_rca8())
        repaired = first.compile_for_die(_rca8(), die)
        bits = golden.bitstreams()
        die_bits = repaired.bitstreams()
        assert first.stats()["compiles"] >= 1
    # first is closed: only the directory survives.
    with CompileService(workers=0, store=tmp_path) as second:
        served = second.compile(_rca8())
        served_die = second.compile_for_die(_rca8(), die)
        stats = second.stats()
    assert served.bitstreams() == bits
    assert served_die.bitstreams() == die_bits
    assert served.from_store and served_die.from_store
    assert served_die.repaired  # provenance survives the round trip
    # Zero recompiles, and the books balance exactly: two store lookups,
    # two hits, no misses; the golden for the die came from memory
    # (promoted by the rca8 hit), not from another compile.
    assert stats["compiles"] == 0
    assert stats["store_hits"] == 2
    store_stats = stats["store"]
    assert store_stats["hits"] == 2 and store_stats["misses"] == 0
    assert store_stats["lookups"] == store_stats["hits"] + store_stats["misses"]


def test_store_hit_skips_goldens_for_foreign_dies(tmp_path):
    """A die repaired elsewhere serves from disk without its golden."""
    die = _stress_die(7)
    with CompileService(workers=0, store=tmp_path) as first:
        first.compile_for_die(_rca8(), die)
    with CompileService(workers=0, store=tmp_path) as second:
        served = second.compile_for_die(_rca8(), die)
        stats = second.stats()
    assert served.from_store
    assert stats["compiles"] == 0
    assert stats["store_hits"] == 1  # the die key alone; no golden load
    assert stats["cache"]["misses"] == 1


def test_memory_tier_shields_the_store(tmp_path):
    """Second lookup of a promoted key never goes back to disk."""
    with CompileService(workers=0, store=tmp_path) as svc:
        svc.compile(_rca8())
    with CompileService(workers=0, store=tmp_path) as svc:
        a = svc.compile(_rca8())  # store hit, promoted to memory
        b = svc.compile(_rca8())  # memory hit
        stats = svc.stats()
    assert a.from_store and not b.from_store
    assert b.cached
    assert stats["store"]["lookups"] == 1


def test_single_flight_preserved_across_tiers(tmp_path):
    """Concurrent duplicates coalesce onto one store load, not N."""
    with CompileService(workers=0, store=tmp_path) as svc:
        bits = svc.compile(_rca8()).bitstreams()
    with CompileService(workers=4, store=tmp_path) as svc:
        futures = [svc.submit(_rca8()) for _ in range(6)]
        results = [f.result() for f in futures]
        stats = svc.stats()
    assert all(r.bitstreams() == bits for r in results)
    assert stats["compiles"] == 0
    # One submission ran the job (one store lookup); some of the other
    # five coalesced onto it, the rest hit the promoted memory entry.
    assert stats["store"]["lookups"] == 1
    assert stats["coalesced"] + stats["cache"]["hits"] == 5


def test_corrupted_store_blob_degrades_to_recompile(tmp_path):
    """The service never crashes on a bad blob: quarantine, recompile."""
    nl = ripple_carry_netlist(4)
    with CompileService(workers=0, store=tmp_path) as svc:
        bits = svc.compile(nl).bitstreams()
        key = svc.job_key(nl, CompileOptions())
    store = ArtifactStore(tmp_path)
    path = store.path_of(key)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 40])  # truncate the payload
    with CompileService(workers=0, store=tmp_path) as svc:
        served = svc.compile(nl)
        stats = svc.stats()
    assert served.bitstreams() == bits  # determinism: recompiled bytes match
    assert not served.from_store and not served.cached
    assert stats["compiles"] == 1
    assert stats["store"]["quarantined"] == 1
    assert stats["store"]["misses"] == 1
    # The recompile re-published a good blob: a third service hits.
    with CompileService(workers=0, store=tmp_path) as svc:
        assert svc.compile(nl).from_store


def test_recompile_serves_edits_from_the_store(tmp_path):
    """An edit some sibling already compiled never pays the delta path."""
    base_nl = ripple_carry_netlist(4)
    edited = _flip_first_and(base_nl)
    with CompileService(workers=0, store=tmp_path) as first:
        base = first.compile(base_nl)
        step = first.recompile(edited, base)
        assert step.incremental and not step.cached
        bits = step.bitstreams()
    with CompileService(workers=0, store=tmp_path) as second:
        base2 = second.compile(base_nl)
        step2 = second.recompile(edited, base2)
        stats = second.stats()
    assert step2.bitstreams() == bits
    assert step2.cached and step2.from_store
    assert step2.incremental  # provenance survives persistence
    assert stats["compiles"] == 0
    assert stats["incremental_compiles"] == 0


def test_store_as_explicit_instance_and_shared_budget(tmp_path):
    """A caller-owned ArtifactStore can back several services."""
    store = ArtifactStore(tmp_path, max_entries=8)
    with CompileService(workers=0, store=store) as a:
        a.compile(ripple_carry_netlist(2))
    with CompileService(workers=0, store=store) as b:
        served = b.compile(ripple_carry_netlist(2))
    assert served.from_store
    assert store.stats()["insertions"] == 1


def _flip_first_and(nl: Netlist) -> Netlist:
    flip = next(c for c in nl.cells if c.kind == "and").name
    out = Netlist(nl.name)
    for p in nl.inputs:
        out.add_input(p)
    for p in nl.outputs:
        out.add_output(p)
    for c in nl.cells:
        kind = "or" if c.name == flip else c.kind
        out.add(kind, c.name, list(c.inputs), c.output,
                delay=c.delay, **dict(c.params))
    return out


_CHILD = textwrap.dedent("""
    import sys
    from repro.datapath.adder import ripple_carry_netlist
    from repro.service import CompileService
    with CompileService(workers=0, store=sys.argv[1]) as svc:
        result = svc.compile(ripple_carry_netlist(8))
        assert not result.cached and not result.from_store
        sys.stdout.buffer.write(b"".join(result.bitstreams()))
""")


def test_real_subprocess_round_trip(tmp_path):
    """An actual second OS process: compile there, serve here from disk."""
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(tmp_path)],
        capture_output=True, env=env, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    child_bytes = proc.stdout
    with CompileService(workers=0, store=tmp_path) as svc:
        served = svc.compile(ripple_carry_netlist(8))
        stats = svc.stats()
    assert b"".join(served.bitstreams()) == child_bytes
    assert served.from_store
    assert stats["compiles"] == 0
