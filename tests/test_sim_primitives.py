"""Unit tests for the simulator gate primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.primitives import (
    AndGate,
    BufGate,
    CElementGate,
    ConstGate,
    NorGate,
    OrGate,
    TableGate,
    XorGate,
)
from repro.sim.scheduler import Simulator
from repro.sim.values import ONE, X, ZERO


def run_combinational(gate_cls, in_values, **kw):
    """Build one gate, drive inputs, return the settled output value."""
    sim = Simulator()
    ins = [sim.net(f"i{k}") for k in range(len(in_values))]
    y = sim.net("y")
    sim.add(gate_cls("g", ins, y, **kw))
    for n, v in zip(ins, in_values):
        sim.drive(n, v)
    sim.run(until=10)
    return y.value


class TestSimpleGates:
    @given(bits=st.lists(st.sampled_from([ZERO, ONE]), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_and_or_nor(self, bits):
        assert run_combinational(AndGate, bits) == (ONE if all(bits) else ZERO)
        assert run_combinational(OrGate, bits) == (ONE if any(bits) else ZERO)
        assert run_combinational(NorGate, bits) == (ZERO if any(bits) else ONE)

    def test_xor(self):
        assert run_combinational(XorGate, [ZERO, ONE]) == ONE
        assert run_combinational(XorGate, [ONE, ONE]) == ZERO

    def test_xor_arity_checked(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            XorGate("x", [sim.net("a")], sim.net("y"))

    def test_buf_passes_x(self):
        assert run_combinational(BufGate, [X]) == X

    def test_const(self):
        sim = Simulator()
        y = sim.net("y")
        sim.add(ConstGate("c", y, ONE))
        sim.run(until=5)
        assert y.value == ONE

    def test_const_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ConstGate("c", sim.net("y"), X)


class TestTableGate:
    def test_majority_function(self):
        # table index = i0 + 2*i1 + 4*i2; majority of three.
        table = [0, 0, 0, 1, 0, 1, 1, 1]
        for bits in [(0, 0, 0), (1, 1, 0), (1, 0, 0), (1, 1, 1)]:
            idx = bits[0] + 2 * bits[1] + 4 * bits[2]
            got = run_combinational(
                lambda n, i, y: TableGate(n, i, y, table), list(bits)
            )
            assert got == table[idx], bits

    def test_wrong_table_size_rejected(self):
        sim = Simulator()
        ins = [sim.net("a"), sim.net("b")]
        with pytest.raises(ValueError):
            TableGate("t", ins, sim.net("y"), [0, 1])

    def test_x_input_poisons(self):
        got = run_combinational(lambda n, i, y: TableGate(n, i, y, [0, 1]), [X])
        assert got == X

    @given(
        table=st.lists(st.integers(0, 1), min_size=4, max_size=4),
        a=st.integers(0, 1),
        b=st.integers(0, 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_2in_table(self, table, a, b):
        got = run_combinational(lambda n, i, y: TableGate(n, i, y, table), [a, b])
        assert got == table[a + 2 * b]


class TestCElement:
    def test_follows_agreeing_inputs(self):
        sim = Simulator()
        a, b, c = sim.net("a"), sim.net("b"), sim.net("c")
        sim.add(CElementGate("c", [a, b], c))
        sim.drive(a, ZERO)
        sim.drive(b, ZERO)
        sim.run(until=10)
        assert c.value == ZERO
        sim.drive(a, ONE)
        sim.drive(b, ONE)
        sim.run(until=20)
        assert c.value == ONE

    def test_holds_on_disagreement(self):
        sim = Simulator()
        a, b, c = sim.net("a"), sim.net("b"), sim.net("c")
        sim.add(CElementGate("c", [a, b], c))
        sim.drive(a, ONE)
        sim.drive(b, ONE)
        sim.run(until=10)
        sim.drive(a, ZERO)  # inputs now disagree
        sim.run(until=20)
        assert c.value == ONE  # held
        sim.drive(b, ZERO)  # agree again
        sim.run(until=30)
        assert c.value == ZERO

    def test_x_until_first_agreement(self):
        sim = Simulator()
        a, b, c = sim.net("a"), sim.net("b"), sim.net("c")
        sim.add(CElementGate("c", [a, b], c))
        sim.drive(a, ONE)
        sim.drive(b, ZERO)
        sim.run(until=10)
        assert c.value == X

    def test_arity_checked(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CElementGate("c", [sim.net("a")], sim.net("y"))

    def test_c_element_equation(self):
        # c_next = a.b + a.c + b.c — exhaustive check against the paper's
        # equation (Section 4.1) for all defined (a, b, c_prev).
        for a in (0, 1):
            for b in (0, 1):
                for c_prev in (0, 1):
                    expect = (a & b) | (a & c_prev) | (b & c_prev)
                    sim = Simulator()
                    na, nb, nc = sim.net("a"), sim.net("b"), sim.net("c")
                    g = CElementGate("c", [na, nb], nc)
                    sim.add(g)
                    # Establish c_prev by first agreeing both inputs.
                    sim.drive(na, c_prev)
                    sim.drive(nb, c_prev)
                    sim.run(until=10)
                    sim.drive(na, a)
                    sim.drive(nb, b)
                    sim.run(until=20)
                    assert nc.value == expect, (a, b, c_prev)
