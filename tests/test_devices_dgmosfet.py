"""Unit tests for the double-gate MOSFET compact model.

The properties tested here are exactly the ones the paper's configuration
scheme relies on (Section 3): back-gate bias moves the threshold linearly,
+/-2 V forces the device fully on or off over the whole logic swing, and the
current model is smooth and monotone so the DC solvers converge.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.dgmosfet import (
    CONFIG_BIAS_LEVELS,
    DGMosfetParams,
    Polarity,
    default_nmos,
    default_pmos,
)


class TestThreshold:
    def test_zero_bias_threshold(self):
        dev = default_nmos()
        assert dev.effective_vt(0.0) == pytest.approx(dev.params.vt0)

    def test_positive_bias_lowers_nmos_vt(self):
        dev = default_nmos()
        assert dev.effective_vt(1.0) < dev.effective_vt(0.0)

    def test_positive_bias_raises_pmos_vt(self):
        dev = default_pmos()
        assert dev.effective_vt(1.0) > dev.effective_vt(0.0)

    def test_linear_coupling(self):
        dev = default_nmos()
        g = dev.params.back_gate_gamma
        assert dev.effective_vt(1.0) == pytest.approx(dev.params.vt0 - g)
        assert dev.effective_vt(-1.0) == pytest.approx(dev.params.vt0 + g)

    def test_vectorised(self):
        dev = default_nmos()
        vt = dev.effective_vt(np.array([-2.0, 0.0, 2.0]))
        assert vt.shape == (3,)
        assert vt[0] > vt[1] > vt[2]


class TestForcedRegions:
    """The -2/0/+2 V config levels must place the device in the right region."""

    def test_force_on_bias_conducts_at_zero_vgs(self):
        dev = default_nmos()
        bias = dev.force_on_bias()
        assert bias > 0
        i = dev.ids(vgs=0.0, vds=0.5, vbg=bias)
        i_active = dev.ids(vgs=0.0, vds=0.5, vbg=0.0)
        assert i > 1e3 * i_active  # decisively on versus leakage

    def test_force_off_bias_cuts_off_at_full_vgs(self):
        dev = default_nmos()
        bias = dev.force_off_bias(swing=1.0)
        assert bias < 0
        i = dev.ids(vgs=1.0, vds=0.5, vbg=bias)
        i_on = dev.ids(vgs=1.0, vds=0.5, vbg=0.0)
        assert i < 1e-3 * i_on

    def test_paper_config_levels_suffice(self):
        # +/-2 V (Fig. 4/5) must be at least as strong as the computed
        # force biases for the default parameterisation.
        dev = default_nmos()
        assert CONFIG_BIAS_LEVELS[2] >= dev.force_on_bias()
        assert CONFIG_BIAS_LEVELS[0] <= dev.force_off_bias(swing=1.0)

    def test_pmos_polarity_mirror(self):
        p = default_pmos()
        assert p.force_on_bias() < 0
        assert p.force_off_bias(swing=1.0) > 0


class TestCurrentModel:
    def test_zero_vds_zero_current(self):
        dev = default_nmos()
        assert dev.ids(1.0, 0.0) == pytest.approx(0.0, abs=1e-15)

    def test_monotone_in_vgs(self):
        dev = default_nmos()
        vgs = np.linspace(-0.5, 1.5, 201)
        i = dev.ids(vgs, 0.6)
        assert np.all(np.diff(i) > 0)

    def test_monotone_in_vds(self):
        dev = default_nmos()
        vds = np.linspace(0.0, 1.2, 201)
        i = dev.ids(0.8, vds)
        assert np.all(np.diff(i) >= 0)

    def test_saturation(self):
        dev = default_nmos()
        # Deep saturation: current nearly flat with vds.
        i1 = dev.ids(0.8, 1.0)
        i2 = dev.ids(0.8, 1.2)
        assert i2 == pytest.approx(i1, rel=0.02)

    def test_subthreshold_exponential(self):
        dev = default_nmos()
        # Below threshold, each 60*n mV of gate drive ~ one decade.
        phi_t = 0.02585
        n = dev.params.subthreshold_n
        v1 = dev.params.vt0 - 0.25
        i1 = dev.ids(v1, 0.5)
        i2 = dev.ids(v1 + n * phi_t * np.log(10.0), 0.5)
        assert i2 / i1 == pytest.approx(10.0, rel=0.35)

    def test_positive_conductance(self):
        dev = default_nmos()
        g = dev.conductance(0.8, 0.3)
        assert g > 0

    def test_broadcasting(self):
        dev = default_nmos()
        vgs = np.linspace(0, 1, 5)[:, None]
        vds = np.linspace(0, 1, 7)[None, :]
        assert np.asarray(dev.ids(vgs, vds)).shape == (5, 7)


class TestParamValidation:
    def test_rejects_nonpositive_vt0(self):
        with pytest.raises(ValueError):
            DGMosfetParams(vt0=0.0)

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ValueError):
            DGMosfetParams(back_gate_gamma=-0.5)

    def test_polarity_twins(self):
        p = DGMosfetParams(polarity=Polarity.NMOS, vt0=0.3)
        q = p.as_pmos()
        assert q.polarity is Polarity.PMOS
        assert q.vt0 == p.vt0
        assert q.as_nmos().polarity is Polarity.NMOS


class TestPropertyBased:
    @given(
        vbg=st.floats(min_value=-3.0, max_value=3.0),
        vgs=st.floats(min_value=-1.0, max_value=2.0),
        vds=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_current_always_finite_nonnegative(self, vbg, vgs, vds):
        dev = default_nmos()
        i = dev.ids(vgs, vds, vbg)
        assert np.isfinite(i)
        assert i >= 0.0

    @given(
        vbg1=st.floats(min_value=-3.0, max_value=3.0),
        vbg2=st.floats(min_value=-3.0, max_value=3.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_nmos_current_monotone_in_back_bias(self, vbg1, vbg2):
        # More positive back bias never reduces NMOS current.
        dev = default_nmos()
        i1 = dev.ids(0.5, 0.5, vbg1)
        i2 = dev.ids(0.5, 0.5, vbg2)
        if vbg1 <= vbg2:
            assert i1 <= i2 * (1 + 1e-12)
        else:
            assert i2 <= i1 * (1 + 1e-12)
