"""Executable documentation: doctests for the netlist and PnR entry points.

The quickstarts in ``repro.netlist.__init__``, ``repro.pnr.timing`` and
``repro.pnr.partition`` and the usage examples on the IR entry points
are part of the public documentation — this test keeps them runnable,
and CI additionally sweeps the whole library with ``pytest
--doctest-modules src/repro``.
"""

import doctest

import repro.netlist
import repro.netlist.backends
import repro.netlist.ir
import repro.pnr.partition
import repro.pnr.timing
import repro.service
import repro.service.session
import repro.service.store


def _run(module) -> int:
    result = doctest.testmod(module)
    assert result.failed == 0, (
        f"{result.failed} doctest failures in {module.__name__}"
    )
    return result.attempted


def test_netlist_package_quickstart():
    assert _run(repro.netlist) > 0  # the quickstart must actually run


def test_netlist_ir_examples():
    assert _run(repro.netlist.ir) > 0


def test_netlist_backends_doctests():
    _run(repro.netlist.backends)  # no examples required, none may fail


def test_pnr_timing_quickstart():
    assert _run(repro.pnr.timing) > 0  # compile -> cycle time, ~6 lines


def test_pnr_partition_quickstart():
    assert _run(repro.pnr.partition) > 0  # shard a chain, verify it


def test_service_package_quickstart():
    # Both quickstarts: the cached hit and the persisted round-trip.
    assert _run(repro.service) > 0


def test_service_store_quickstart():
    assert _run(repro.service.store) > 0  # put/get/evict on a tmpdir


def test_service_session_quickstart():
    assert _run(repro.service.session) > 0  # a two-edit incremental chain
