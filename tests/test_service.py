"""Concurrency, caching and accounting proofs for the compile service.

The ISSUE 7 contract, stated as tests:

* every service-produced bitstream — cold, cached, coalesced, or
  concurrent — is **byte-identical** to the corresponding cold serial
  ``compile_to_fabric`` of the entry's netlist;
* duplicate submissions coalesce onto **one** compile (exact counter
  accounting, not "at most a few");
* results are invariant under the worker count;
* the LRU cache evicts in recency order under capacity pressure, its
  counters are exact, and evicted entries recompile correctly;
* isomorphic-but-renamed submissions hit the cache and get pin maps
  translated to their own port names.
"""

import threading

import pytest

from repro.datapath.adder import ripple_carry_netlist
from repro.datapath.multiplier import array_multiplier_netlist
from repro.netlist import Netlist
from repro.pnr import compile_to_fabric
from repro.pnr.parallel import TaskPool
from repro.service import CompileOptions, CompileService, ResultCache


def cold_bytes(netlist, options=None):
    """The reference artifact: one cold serial compile."""
    kwargs = (options or CompileOptions()).compile_kwargs()
    result = compile_to_fabric(netlist, **kwargs)
    if hasattr(result, "to_bitstreams"):
        return [s.tobytes() for s in result.to_bitstreams()]
    return [result.to_bitstream().tobytes()]


def renamed_rca(n, prefix):
    """rca-n with every port, net and cell bijectively renamed."""
    base = ripple_carry_netlist(n)
    mapping = {}
    for i, p in enumerate(list(base.inputs) + list(base.outputs)):
        mapping[p] = f"{prefix}{i}"

    def m(net):
        return mapping.get(net, f"{prefix}_{net}")

    out = Netlist("renamed")
    for p in base.inputs:
        out.add_input(m(p))
    for p in base.outputs:
        out.add_output(m(p))
    for c in base.cells:
        out.add(c.kind, f"{prefix}.{c.name}", [m(i) for i in c.inputs],
                m(c.output), delay=c.delay, **dict(c.params))
    return out


# ---------------------------------------------------------------------------
# ResultCache: eviction order and exact accounting
# ---------------------------------------------------------------------------


def test_cache_lru_order_under_capacity_pressure():
    cache = ResultCache(capacity=3)
    for k in "abc":
        cache.put(k, k.upper())
    assert cache.keys() == ["a", "b", "c"]
    cache.get("a")  # bump
    assert cache.keys() == ["b", "c", "a"]
    evicted = cache.put("d", "D")
    assert evicted == ["b"]
    assert cache.keys() == ["c", "a", "d"]
    assert cache.get("b") is None
    # refreshing an existing key evicts nothing and re-ranks it
    assert cache.put("c", "C2") == []
    assert cache.keys() == ["a", "d", "c"]


def test_cache_counters_are_exact():
    cache = ResultCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")
    cache.get("missing")
    cache.put("c", 3)  # evicts b
    cache.get("b")
    s = cache.stats()
    assert s == {
        "capacity": 2,
        "size": 2,
        "hits": 1,
        "misses": 2,
        "lookups": 3,
        "evictions": 1,
        "insertions": 3,
    }
    assert s["lookups"] == s["hits"] + s["misses"]


def test_cache_peek_and_contains_do_not_disturb():
    cache = ResultCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.peek("a") == 1
    assert "a" in cache
    # neither call bumped recency or counters
    assert cache.keys() == ["a", "b"]
    assert cache.stats()["lookups"] == 0


def test_cache_capacity_zero_disables():
    cache = ResultCache(capacity=0)
    cache.put("a", 1)
    assert len(cache) == 0
    assert cache.get("a") is None
    assert cache.stats()["misses"] == 1


def test_cache_rejects_negative_capacity():
    with pytest.raises(ValueError):
        ResultCache(capacity=-1)


def test_cache_is_thread_safe_under_hammering():
    cache = ResultCache(capacity=8)
    errors = []

    def worker(base):
        try:
            for i in range(300):
                k = (base + i) % 16
                cache.put(k, k)
                cache.get((base + i * 7) % 16)
        except Exception as e:  # pragma: no cover - only on failure
            errors.append(e)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    s = cache.stats()
    assert s["size"] <= 8
    assert s["lookups"] == s["hits"] + s["misses"] == 1800
    assert s["insertions"] == 1800


# ---------------------------------------------------------------------------
# TaskPool
# ---------------------------------------------------------------------------


def test_taskpool_serial_runs_inline():
    with TaskPool(workers=0) as pool:
        assert pool.serial
        thread_ids = []
        fut = pool.submit(lambda: thread_ids.append(threading.get_ident()))
        assert fut.done()
        assert thread_ids == [threading.get_ident()]


def test_taskpool_propagates_errors_in_both_modes():
    def boom():
        raise RuntimeError("kaput")

    for workers in (0, 2):
        with TaskPool(workers=workers) as pool:
            with pytest.raises(RuntimeError, match="kaput"):
                pool.submit(boom).result()


def test_taskpool_parallel_runs_off_thread():
    with TaskPool(workers=2) as pool:
        assert not pool.serial
        ident = pool.submit(threading.get_ident).result()
        assert isinstance(ident, int)


# ---------------------------------------------------------------------------
# CompileService: byte-identity, coalescing, determinism
# ---------------------------------------------------------------------------


def test_cold_compile_matches_direct_flow():
    nl = ripple_carry_netlist(4)
    with CompileService(workers=0, cache_capacity=4) as svc:
        got = svc.compile(ripple_carry_netlist(4))
    assert not got.cached and not got.incremental
    assert got.bitstreams() == cold_bytes(nl)


def test_cache_hit_returns_identical_bytes_and_counts():
    with CompileService(workers=0, cache_capacity=4) as svc:
        first = svc.compile(ripple_carry_netlist(4))
        second = svc.compile(ripple_carry_netlist(4))
        assert not first.cached and second.cached
        assert first.bitstreams() == second.bitstreams()
        s = svc.stats()
        assert s["compiles"] == 1
        assert s["submissions"] == 2
        assert s["cache"]["hits"] == 1


def test_concurrency_stress_duplicates_coalesce_to_one_compile():
    """N clients, duplicate + distinct jobs, full byte-identity audit."""
    designs = {
        "rca2": ripple_carry_netlist(2),
        "rca4": ripple_carry_netlist(4),
        "mul2": array_multiplier_netlist(2),
    }
    reference = {name: cold_bytes(nl) for name, nl in designs.items()}
    # 18 submissions over 3 distinct circuits, from 6 client threads.
    plan = (["rca2", "rca4", "mul2"] * 6)[:18]

    with CompileService(workers=4, cache_capacity=8) as svc:
        futures = [None] * len(plan)
        barrier = threading.Barrier(6)

        def client(idx_range):
            barrier.wait()  # maximise overlap: all clients burst at once
            for i in idx_range:
                futures[i] = svc.submit(designs[plan[i]])

        threads = [
            threading.Thread(target=client, args=(range(t, 18, 6),))
            for t in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [f.result() for f in futures]
        stats = svc.stats()

    for name, result in zip(plan, results):
        assert result.bitstreams() == reference[name], f"{name} diverged"
    # exactly one compile per distinct circuit; every duplicate was
    # either coalesced onto an in-flight job or served from cache
    assert stats["compiles"] == 3
    assert stats["submissions"] == 18
    assert stats["coalesced"] + stats["cache"]["hits"] == 15


def test_results_are_invariant_under_worker_count():
    plan = [2, 4, 2, 4, 2]
    outcomes = []
    for workers in (0, 2, 4):
        with CompileService(workers=workers, cache_capacity=8) as svc:
            futs = [svc.submit(ripple_carry_netlist(n)) for n in plan]
            outcomes.append([f.result().bitstreams() for f in futs])
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_renamed_isomorphic_submission_hits_with_remapped_ports():
    original = ripple_carry_netlist(4)
    renamed = renamed_rca(4, "p")
    with CompileService(workers=0, cache_capacity=4) as svc:
        first = svc.compile(ripple_carry_netlist(4))
        second = svc.compile(renamed_rca(4, "p"))
        assert second.cached
        assert svc.stats()["compiles"] == 1
    # same artifact bytes...
    assert first.bitstreams() == second.bitstreams()
    # ...with each client's own port spelling mapped positionally
    for a, b in zip(original.inputs, renamed.inputs):
        assert first.input_wires.get(a) == second.input_wires.get(b)
    for a, b in zip(original.outputs, renamed.outputs):
        assert first.output_wires.get(a) == second.output_wires.get(b)


def test_distinct_options_do_not_share_entries():
    with CompileService(workers=0, cache_capacity=4) as svc:
        a = svc.compile(ripple_carry_netlist(2), CompileOptions(seed=0))
        b = svc.compile(ripple_carry_netlist(2), CompileOptions(seed=3))
        assert svc.stats()["compiles"] == 2
        assert a.key != b.key
    assert a.bitstreams() == cold_bytes(ripple_carry_netlist(2))
    assert b.bitstreams() == cold_bytes(
        ripple_carry_netlist(2), CompileOptions(seed=3)
    )


def test_evicted_entries_recompile_correctly():
    with CompileService(workers=0, cache_capacity=1) as svc:
        first = svc.compile(ripple_carry_netlist(2))
        svc.compile(ripple_carry_netlist(4))  # evicts rca2
        assert svc.stats()["cache"]["evictions"] == 1
        again = svc.compile(ripple_carry_netlist(2))  # miss, recompiles
        stats = svc.stats()
    assert not again.cached
    assert stats["compiles"] == 3
    assert again.bitstreams() == first.bitstreams() == cold_bytes(
        ripple_carry_netlist(2)
    )


def test_compile_errors_propagate_and_are_not_cached():
    nl = Netlist("broken")
    nl.add("celement", "c1", ["x", "fb"], "m")
    nl.add("not", "g", ["m"], "fb")  # cell-level feedback: uncompilable
    nl.add_input("x")
    nl.add_output("m")
    with CompileService(workers=0, cache_capacity=4) as svc:
        with pytest.raises(Exception):
            svc.compile(nl)
        with pytest.raises(Exception):
            svc.compile(nl)  # still raises: failures were not cached
        s = svc.stats()
        assert s["compiles"] == 2
        assert s["cache"]["size"] == 0


def test_sharded_options_serve_sharded_artifacts():
    nl = ripple_carry_netlist(8)
    opts = CompileOptions(shards=2)
    with CompileService(workers=0, cache_capacity=4) as svc:
        got = svc.compile(ripple_carry_netlist(8), opts)
        hit = svc.compile(ripple_carry_netlist(8), opts)
    assert len(got.bitstreams()) == 2
    assert got.bitstreams() == cold_bytes(nl, opts)
    assert hit.cached and hit.bitstreams() == got.bitstreams()


def test_service_recompile_delta_and_fallback_accounting():
    nl = ripple_carry_netlist(8)
    with CompileService(workers=0, cache_capacity=8) as svc:
        base = svc.compile(ripple_carry_netlist(8))

        edited = Netlist(nl.name)
        for p in nl.inputs:
            edited.add_input(p)
        for p in nl.outputs:
            edited.add_output(p)
        flip = next(c for c in nl.cells if c.kind == "and").name
        for c in nl.cells:
            kind = "or" if c.name == flip else c.kind
            edited.add(kind, c.name, list(c.inputs), c.output,
                       delay=c.delay, **dict(c.params))
        inc = svc.recompile(edited, base)
        assert inc.incremental and not inc.cached

        # resubmitting the same edit is a plain content hit
        again = svc.submit(edited).result()
        assert again.cached
        assert again.bitstreams() == inc.bitstreams()

        # a totally different netlist through recompile() falls back
        other = svc.recompile(array_multiplier_netlist(2), base)
        stats = svc.stats()
    assert not other.incremental
    assert other.bitstreams() == cold_bytes(array_multiplier_netlist(2))
    assert stats["incremental_compiles"] == 1
    assert stats["incremental_fallbacks"] == 1
