"""Unit tests for waveform capture, edge queries and hazard detection."""

import pytest

from repro.sim.hazards import count_spurious_transitions, find_glitches, is_hazard_free
from repro.sim.primitives import BufGate, NotGate
from repro.sim.scheduler import Simulator
from repro.sim.values import ONE, X, ZERO
from repro.sim.waveform import TraceSet, Waveform


def traced_buffer_sim():
    sim = Simulator()
    a, y = sim.net("a"), sim.net("y")
    sim.add(BufGate("b", [a], y, delay=1))
    sim.trace("a", "y")
    return sim, a, y


class TestWaveform:
    def test_value_at_interpolates_held_values(self):
        w = Waveform("w", [(0, ZERO), (10, ONE), (20, ZERO)])
        assert w.value_at(0) == ZERO
        assert w.value_at(9) == ZERO
        assert w.value_at(10) == ONE
        assert w.value_at(15) == ONE
        assert w.value_at(25) == ZERO

    def test_value_before_first_sample_is_x(self):
        w = Waveform("w", [(5, ONE)])
        assert w.value_at(0) == X

    def test_edges(self):
        w = Waveform("w", [(0, ZERO), (10, ONE), (20, ZERO)])
        e = w.edges()
        assert len(e) == 2
        assert e[0].rising and e[0].time == 10
        assert e[1].falling and e[1].time == 20

    def test_rising_falling_lists(self):
        w = Waveform("w", [(0, ZERO), (10, ONE), (20, ZERO), (30, ONE)])
        assert w.rising_edges() == [10, 30]
        assert w.falling_edges() == [20]

    def test_pulses(self):
        w = Waveform("w", [(0, ZERO), (10, ONE), (13, ZERO), (20, ONE), (40, ZERO)])
        assert w.pulses(level=ONE) == [(10, 3), (20, 20)]

    def test_toggle_count(self):
        w = Waveform("w", [(0, ZERO), (10, ONE), (20, ZERO), (30, ONE)])
        assert w.toggle_count() == 3

    def test_final_value(self):
        w = Waveform("w", [(0, ZERO), (10, ONE)])
        assert w.final_value() == ONE


class TestTraceSet:
    def test_from_simulation(self):
        sim, a, y = traced_buffer_sim()
        del y
        sim.stimulus(a, [(0, ZERO), (10, ONE)])
        sim.run(until=20)
        traces = TraceSet(sim)
        assert traces["y"].value_at(15) == ONE
        assert "a" in traces and "y" in traces

    def test_missing_net_reports_known(self):
        sim, a, _ = traced_buffer_sim()
        del a
        sim.run(until=5)
        traces = TraceSet(sim)
        with pytest.raises(KeyError, match="traced nets"):
            traces["nope"]

    def test_bus_as_int(self):
        sim = Simulator()
        bits = [sim.net(f"b{k}") for k in range(4)]
        sim.trace(*(n.name for n in bits))
        for k, n in enumerate(bits):
            sim.drive(n, ONE if (0b1010 >> k) & 1 else ZERO)
        sim.run(until=5)
        traces = TraceSet(sim)
        assert traces.bus_as_int([n.name for n in bits], 5) == 0b1010

    def test_bus_rejects_undefined_bit(self):
        sim = Simulator()
        sim.net("b0")
        sim.trace("b0")
        sim.run(until=5)
        traces = TraceSet(sim)
        with pytest.raises(ValueError):
            traces.bus_as_int(["b0"], 5)


class TestHazards:
    def test_clean_signal_hazard_free(self):
        w = Waveform("w", [(0, ONE)])
        assert is_hazard_free(w, [(0, 100)], max_width=5)

    def test_static1_glitch_found(self):
        # 1 ... dips to 0 for 3 units ... back to 1: classic static-1 hazard.
        w = Waveform("w", [(0, ONE), (50, ZERO), (53, ONE)])
        glitches = find_glitches(w, (40, 70), max_width=5)
        assert len(glitches) == 1
        assert glitches[0].kind == "static-1"
        assert glitches[0].width == 3

    def test_static0_glitch_found(self):
        w = Waveform("w", [(0, ZERO), (50, ONE), (52, ZERO)])
        glitches = find_glitches(w, (40, 70), max_width=5)
        assert len(glitches) == 1
        assert glitches[0].kind == "static-0"

    def test_genuine_transition_not_flagged(self):
        # Signal ends at a different level: a real output change, no hazard.
        w = Waveform("w", [(0, ONE), (50, ZERO)])
        assert find_glitches(w, (40, 70), max_width=5) == []

    def test_wide_pulse_not_a_glitch(self):
        w = Waveform("w", [(0, ONE), (50, ZERO), (80, ONE)])
        assert find_glitches(w, (40, 100), max_width=5) == []

    def test_window_validation(self):
        w = Waveform("w", [(0, ONE)])
        with pytest.raises(ValueError):
            find_glitches(w, (50, 50), max_width=5)

    def test_spurious_transition_count(self):
        w = Waveform("w", [(0, ZERO), (10, ONE), (12, ZERO), (20, ONE)])
        # Functionally one rising edge expected; the 10-12 blip adds two.
        assert count_spurious_transitions(w, expected_edges=1) == 2

    def test_inverter_output_glitch_detected_in_simulation(self):
        # Drive a pulse wider than the gate delay through an inverter and
        # verify the hazard scanner sees the resulting 0-pulse.
        sim = Simulator()
        a, y = sim.net("a"), sim.net("y")
        sim.add(NotGate("i", [a], y, delay=1))
        sim.trace("y")
        sim.stimulus(a, [(0, ZERO), (50, ONE), (53, ZERO)])
        sim.run(until=100)
        w = TraceSet(sim)["y"]
        glitches = find_glitches(w, (40, 80), max_width=4)
        assert len(glitches) == 1 and glitches[0].kind == "static-1"
