"""End-to-end system tests: multi-macro sequential designs on the fabric.

These are the repository's "does the whole stack compose" checks: synth ->
macros -> placement -> fabric compile -> event simulation, with several
interacting macros and fold-back routes, plus fuzzing of the bitstream
path and determinism properties of the simulator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.platform import PolymorphicPlatform
from repro.fabric.array import CellArray
from repro.fabric.bitstream import BitstreamError, decode_array
from repro.synth.macros import complement_cell, dff_pair, lut_pair_from_table
from repro.synth.truthtable import TruthTable


class TwoBitCounter:
    """A synchronous 2-bit counter: two D-FF pairs + next-state LUTs.

    next q0 = NOT q0;  next q1 = q1 XOR q0.  State feeds back to the
    next-state logic through platform fold routes (see
    repro.core.platform for the modelling note).
    """

    def __init__(self) -> None:
        p = PolymorphicPlatform(1, 16)
        # Next-state functions over (q0, q1, unused).
        t_n0 = TruthTable.from_function(3, lambda q0, q1, _: not q0)
        t_n1 = TruthTable.from_function(3, lambda q0, q1, _: q1 != q0)
        self.comp = p.place(complement_cell(3), 0, 0)
        self.lut0 = p.place(lut_pair_from_table(t_n0), 0, 1)
        self.lut1 = p.place(lut_pair_from_table(t_n1), 0, 4)
        self.ff0 = p.place(dff_pair(with_reset=True), 0, 8)
        self.ff1 = p.place(dff_pair(with_reset=True), 0, 11)
        p.connect(self.lut0.outputs["f"], self.ff0.inputs["d"])
        p.connect(self.lut1.outputs["f"], self.ff1.inputs["d"])
        # lut0 abuts the complement cell; lut1 does not, so its literal
        # columns are fed by explicit routes (fabric-wise: feed-throughs).
        for port in ("x0", "x0_n", "x1", "x1_n", "x2", "x2_n"):
            p.connect(self.comp.outputs[port], self.lut1.inputs[port])
        # State feedback into the complement cell's raw inputs.
        p.connect(self.ff0.outputs["q"], self.comp.inputs["x0"])
        p.connect(self.ff1.outputs["q"], self.comp.inputs["x1"])
        self.platform = p
        self._now = 0
        p.drive_bit(self.comp.inputs["x2"], 0)
        self.reset()

    def _advance(self, dt: int = 200) -> None:
        self._now += dt
        self.platform.run(self._now)

    def reset(self) -> None:
        p = self.platform
        for ff in (self.ff0, self.ff1):
            p.drive_bit(ff.inputs["rst_n"], 0)
            p.drive_bit(ff.inputs["clk"], 0)
            p.drive_bit(ff.inputs["clk_n"], 1)
        self._advance(400)
        for ff in (self.ff0, self.ff1):
            p.drive_bit(ff.inputs["rst_n"], 1)
        self._advance(400)

    def clock(self) -> int:
        p = self.platform
        for level in (1, 0):
            for ff in (self.ff0, self.ff1):
                p.drive_bit(ff.inputs["clk"], level)
                p.drive_bit(ff.inputs["clk_n"], 1 - level)
            self._advance(400)
        return self.value()

    def value(self) -> int:
        p = self.platform
        return p.bit(self.ff0.outputs["q"]) | (p.bit(self.ff1.outputs["q"]) << 1)


class TestCounterSystem:
    def test_counts_modulo_four(self):
        counter = TwoBitCounter()
        assert counter.value() == 0
        seq = [counter.clock() for _ in range(9)]
        assert seq == [1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_reset_mid_count(self):
        counter = TwoBitCounter()
        counter.clock()
        counter.clock()
        counter.reset()
        assert counter.value() == 0
        assert counter.clock() == 1

    def test_resource_accounting(self):
        counter = TwoBitCounter()
        stats = counter.platform.stats()
        # complement cell + 2 LUT pairs + 2 FF pairs = 9 cells.
        assert stats.n_cells_used == 9
        # 2 d-feeds + 2 state feedbacks + 6 literal fan-outs to lut1.
        assert stats.folded_routes == 10


class TestFabricVsGolden:
    @given(seed=st.integers(0, 10_000), idx=st.integers(0, 7))
    @settings(max_examples=25, deadline=None)
    def test_lut_matches_truth_table(self, seed, idx):
        # Property: any minimised 3-var function mapped onto a cell pair
        # equals its truth table on any input vector.
        t = TruthTable.random(3, np.random.default_rng(seed))
        p = PolymorphicPlatform(1, 4)
        comp = p.place(complement_cell(3), 0, 0)
        lut = p.place(lut_pair_from_table(t), 0, 1)
        bits = [(idx >> k) & 1 for k in range(3)]
        for k, b in enumerate(bits):
            p.drive_bit(comp.inputs[f"x{k}"], b)
        p.settle(150)
        assert p.bit(lut.outputs["f"]) == int(t.outputs[idx])


class TestBitstreamFuzz:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_single_bitflip_never_silently_accepted(self, seed):
        # Any single payload-bit flip must raise (CRC) — never return a
        # silently different configuration.
        rng = np.random.default_rng(seed)
        arr = CellArray(1, 2)
        bits = arr.to_bitstream()
        k = int(rng.integers(16, len(bits) - 16))
        bits = np.array(bits)
        bits[k] ^= 1
        with pytest.raises(BitstreamError):
            decode_array(bits)

    @given(cut=st.integers(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_truncation_always_detected(self, cut):
        bits = CellArray(1, 1).to_bitstream()
        with pytest.raises(BitstreamError):
            decode_array(bits[: len(bits) - cut])


class TestSimulatorDeterminism:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_identical_runs_identical_traces(self, seed):
        # Two simulations of the same randomly-configured feed-through
        # fabric with the same stimulus produce identical histories.
        def run():
            rng = np.random.default_rng(seed)
            arr = CellArray(1, 3)
            from repro.fabric.driver import DriverMode
            from repro.fabric.nandcell import CellConfig

            for c in range(3):
                cfg = CellConfig()
                for line in range(3):
                    cfg.set_product(line, [line])
                    cfg.drivers[line] = DriverMode.INVERT
                arr.set_cell(0, c, cfg)
            sim = arr.compile_into().sim
            sim.trace_all()
            for t in range(0, 200, 17):
                for line in range(3):
                    sim.drive(f"w[0][0][{line}]", int(rng.integers(0, 2)), at=t)
            sim.run(until=400)
            return {
                name: net.history
                for name, net in sim.nets.items()
                if net.history is not None
            }

        assert run() == run()
