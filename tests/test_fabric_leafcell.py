"""Unit tests for leaf-cell states and the driver mode encoding."""

import pytest

from repro.devices.rtd_sram import BackGateDriver, TunnellingSRAM
from repro.fabric.driver import (
    DRIVER_DELAY,
    DriverMode,
    decode_mode,
    driver_drives,
    driver_inverting,
    encode_mode,
)
from repro.fabric.leafcell import (
    LeafState,
    bias_for_leaf,
    char_to_leaf,
    leaf_for_bias,
    leaf_from_sram_state,
    leaf_to_char,
    sram_state_for_leaf,
)


class TestLeafState:
    def test_sram_round_trip(self):
        for s in LeafState:
            assert leaf_from_sram_state(sram_state_for_leaf(s)) is s

    def test_bad_sram_state(self):
        with pytest.raises(ValueError):
            leaf_from_sram_state(5)

    def test_bias_levels_match_fig4(self):
        assert bias_for_leaf(LeafState.FORCE_OFF) == -2.0
        assert bias_for_leaf(LeafState.ACTIVE) == 0.0
        assert bias_for_leaf(LeafState.FORCE_ON) == +2.0

    def test_bias_round_trip(self):
        for s in LeafState:
            assert leaf_for_bias(bias_for_leaf(s)) is s

    def test_bias_snapping(self):
        assert leaf_for_bias(-1.7) is LeafState.FORCE_OFF
        assert leaf_for_bias(0.3) is LeafState.ACTIVE
        assert leaf_for_bias(1.8) is LeafState.FORCE_ON

    def test_char_round_trip(self):
        for s in LeafState:
            assert char_to_leaf(leaf_to_char(s)) is s

    def test_bad_char(self):
        with pytest.raises(ValueError):
            char_to_leaf("?")

    def test_states_align_with_physical_cell(self):
        # The tunnelling SRAM's three states must map onto the three leaf
        # states through the back-gate driver without reordering.
        cell = TunnellingSRAM()
        drv = BackGateDriver(cell)
        for s in LeafState:
            bias = drv.bias_for_state(sram_state_for_leaf(s))
            assert leaf_for_bias(bias) is s


class TestDriverMode:
    def test_encode_decode_round_trip(self):
        for m in DriverMode:
            assert decode_mode(encode_mode(m)) is m

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode_mode(7)

    def test_drive_predicates(self):
        assert not driver_drives(DriverMode.OFF)
        assert driver_drives(DriverMode.INVERT)
        assert driver_drives(DriverMode.BUFFER)
        assert driver_drives(DriverMode.PASS)
        assert driver_inverting(DriverMode.INVERT)
        assert not driver_inverting(DriverMode.BUFFER)

    def test_pass_mode_slower_than_active_drive(self):
        # A pass transistor is weaker than an active driver.
        assert DRIVER_DELAY[DriverMode.PASS] > DRIVER_DELAY[DriverMode.BUFFER]

    def test_modes_fit_two_bits(self):
        assert all(0 <= encode_mode(m) <= 3 for m in DriverMode)
