"""Multi-edit incremental sessions: the ISSUE 9 chain contract.

The acceptance pins, stated as tests:

* a **5-edit session** on rca8 completes with every step either ≥ 3x
  faster than its own cold compile or a *provable* fallback (recorded
  on the step and in the service books — never silent), every step
  dual-backend verified;
* **chaining** is real: each step warm-starts from the *previous*
  step's artifact, proven by driving the cumulative delta past the
  25% fallback budget while every per-step delta stays under it — the
  same final edit recompiled against the original base provably falls
  back;
* an oversized edit **escalates** (``fallback=True``, counter bumped),
  and the chain continues incrementally from the fallback's artifact;
* with a store attached, **every intermediate is persisted and
  cache-addressable**: a fresh service on the same directory replays
  the whole session as hits (``compiles == 0``), and a cold submission
  of a mid-chain netlist gets that step's exact bytes.
"""

import time

import pytest

from repro.datapath.adder import ripple_carry_netlist
from repro.netlist import Netlist
from repro.pnr import compile_to_fabric
from repro.service import CompileService, EditSession

BASE = ripple_carry_netlist(8)
_AND_GATES = [c.name for c in BASE.cells if c.kind == "and"]
_ALL_CELLS = [c.name for c in BASE.cells]


def _flip(nl: Netlist, names: set[str]) -> Netlist:
    """and->or on the named cells (ports and wiring unchanged)."""
    out = Netlist(nl.name)
    for p in nl.inputs:
        out.add_input(p)
    for p in nl.outputs:
        out.add_output(p)
    for c in nl.cells:
        kind = "or" if c.name in names and c.kind == "and" else c.kind
        out.add(kind, c.name, list(c.inputs), c.output,
                delay=c.delay, **dict(c.params))
    return out


def _bump_delays(nl: Netlist, names: set[str]) -> Netlist:
    """+1 delay on the named cells — a pure-timing edit of tunable size."""
    out = Netlist(nl.name)
    for p in nl.inputs:
        out.add_input(p)
    for p in nl.outputs:
        out.add_output(p)
    for c in nl.cells:
        delay = c.delay + 1 if c.name in names else c.delay
        out.add(c.kind, c.name, list(c.inputs), c.output,
                delay=delay, **dict(c.params))
    return out


def _five_edits(base: Netlist | None = None) -> list[Netlist]:
    """Five cumulative one-gate flips: edit k flips the first k gates."""
    base = base if base is not None else BASE
    gates = [c.name for c in base.cells if c.kind == "and"]
    return [
        _flip(base, set(gates[: k + 1])) for k in range(5)
    ]


def test_five_edit_session_every_step_3x_or_provable_fallback():
    # rca16: wide enough that a cold compile dwarfs the per-call fixed
    # costs (hashing, cache probes) the warm path also pays — the 3x
    # pin then measures the delta path, not the bookkeeping.
    base = ripple_carry_netlist(16)
    edits = _five_edits(base)
    # Cold reference: each edited netlist compiled from scratch, timed.
    cold_s = []
    for nl in edits:
        t0 = time.perf_counter()
        compile_to_fabric(nl, seed=0, workers=0)
        cold_s.append(time.perf_counter() - t0)

    with CompileService(workers=0) as svc:
        session = svc.open_session(base)
        for nl in edits:
            session.apply(nl)
        stats = svc.stats()

    assert len(session.steps) == 5
    for step, cold in zip(session.steps, cold_s):
        if step.fallback:
            continue  # provable: recorded on the step and counted below
        assert step.incremental, f"step {step.index} neither warm nor fallback"
        assert cold / step.seconds >= 3.0, (
            f"step {step.index}: {step.seconds:.4f}s vs cold {cold:.4f}s "
            f"({cold / step.seconds:.1f}x < 3x)"
        )
    # Books: every non-fallback step is an incremental compile, every
    # fallback is counted — nothing escalates silently.
    s = session.stats()
    assert s["steps"] == 5
    assert s["incremental"] + s["fallbacks"] + s["cached"] == 5
    assert stats["incremental_fallbacks"] == s["fallbacks"]
    assert stats["incremental_compiles"] == s["incremental"]
    # Every step's artifact is dual-backend equivalent to its own edit.
    for step in session.steps:
        report = step.result.result.verify(n_vectors=64, event_vectors=4)
        assert report["ok"]


def test_oversized_edit_escalates_and_chain_warm_starts_from_it():
    """Fallback is provable, and the chain provably moves forward.

    Step 1 bumps every cell's delay — 33% of the mapped gates, past the
    25% budget — so it must escalate to a cold compile, recorded on the
    step and in the counters.  Step 2 is one gate on top of that.  Its
    delta against step 1's artifact is tiny; against the *original
    base* it provably exceeds the budget (the direct
    ``compile_incremental`` raises, with the diff attached as proof).
    Step 2 going incremental is therefore only possible because
    :meth:`EditSession.apply` warm-started it from the previous step's
    artifact, not from the session base.
    """
    from repro.pnr import IncrementalFallback, compile_incremental

    big = _bump_delays(BASE, set(_ALL_CELLS))  # 40/120 mapped gates
    small_after = _flip(big, {_AND_GATES[0]})
    with CompileService(workers=0) as svc:
        session = svc.open_session(BASE)
        jumped = session.apply(big)
        recovered = session.apply(small_after)
        stats = svc.stats()
    step1, step2 = session.steps
    # The big step fell back — provable on the step, in the session
    # books, and in the service counters — and still compiled.
    assert step1.fallback and not step1.incremental
    assert stats["incremental_fallbacks"] == 1
    assert not jumped.incremental
    cold = compile_to_fabric(big, seed=0, workers=0)
    assert jumped.bitstreams() == [cold.to_bitstream().tobytes()]
    # The chain continues *incrementally* from the fallback's artifact…
    assert step2.incremental and not step2.fallback
    assert recovered.incremental
    # …which is the only artifact it *can* have warm-started from: the
    # same edit against the session base provably exceeds the budget.
    with pytest.raises(IncrementalFallback) as exc:
        compile_incremental(small_after, session.base.result, seed=0)
    assert exc.value.delta is not None
    assert exc.value.delta.frac > 0.25
    assert session.stats() == {
        "steps": 2, "incremental": 1, "fallbacks": 1, "cached": 0,
        "errors": 0, "seconds": session.stats()["seconds"],
    }


def test_session_intermediates_are_persisted_and_addressable(tmp_path):
    edits = _five_edits()
    with CompileService(workers=0, store=tmp_path) as first:
        session = first.open_session(BASE)
        bits = [session.apply(nl).bitstreams() for nl in edits]
        assert first.stats()["store"]["insertions"] == 6  # base + 5 steps

    # A fresh service replays the whole session as hits: zero compiles,
    # zero delta compiles, byte-identical artifacts at every step.
    with CompileService(workers=0, store=tmp_path) as second:
        replay = second.open_session(BASE)
        replay_bits = [replay.apply(nl).bitstreams() for nl in edits]
        stats = second.stats()
    assert replay_bits == bits
    assert all(s.cached for s in replay.steps)
    assert replay.stats()["cached"] == 5
    assert stats["compiles"] == 0
    assert stats["incremental_compiles"] == 0

    # A mid-chain netlist submitted cold — no session, no base — is
    # content-addressed to that step's exact bytes.
    with CompileService(workers=0, store=tmp_path) as third:
        served = third.compile(edits[2])
        assert served.from_store
        assert served.bitstreams() == bits[2]
        assert third.stats()["compiles"] == 0


def test_open_session_shape_and_current_pointer():
    with CompileService(workers=0) as svc:
        session = svc.open_session(ripple_carry_netlist(2))
        assert isinstance(session, EditSession)
        assert session.steps == [] and session.current is session.base
        edit = _flip(ripple_carry_netlist(2),
                     {next(c.name for c in ripple_carry_netlist(2).cells
                           if c.kind == "and")})
        result = session.apply(edit)
        assert session.current is result
        assert session.steps[0].index == 1
        assert session.steps[0].edited is edit
        assert session.steps[0].seconds > 0


def test_reopening_a_session_on_a_cached_base_is_free():
    with CompileService(workers=0) as svc:
        svc.open_session(BASE)
        session = svc.open_session(BASE)  # base is a cache hit now
        assert session.base.cached
        assert svc.stats()["compiles"] == 1
