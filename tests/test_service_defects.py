"""The compile service's per-die path: one golden compile, a fleet of dies.

The ISSUE 8 stress contract, stated as tests:

* ``compile_for_die`` repairs 50 seeded, distinct, genuinely defective
  dies from **one** golden rca8 compile — exact counter accounting
  (``compiles == 1``, ``repairs == 50``), every repaired die verified
  dual-backend and proven to touch no dead resource;
* the die cache key composes the netlist's canonical hash with the
  defect map's digest: resubmitting a die hits, a different die
  misses, and a clean-die key never collides with the golden key;
* concurrent submissions of the same die coalesce onto one repair;
* a die beyond warm repair escalates to a cold defect-aware compile
  (``repair_fallbacks`` accounting), and a hopeless die propagates its
  ``PnrError`` through the future without poisoning the cache;
* the warm repair path is pinned **>= 5x faster** than a cold
  defect-aware compile (median over the fleet, measured here and
  recorded — not gated — by ``benchmarks/bench_defects.py``).
"""

import statistics
import threading
import time

import pytest

from repro.datapath.adder import ripple_carry_netlist
from repro.pnr import (
    DefectMap,
    PnrError,
    assert_defect_clean,
    compile_to_fabric,
    repair_for_die,
    sample_defect_map,
    verify_equivalence,
)
from repro.service import CompileOptions, CompileService

# The stress operating point: rca8 compiles to a 31x31 array; at these
# per-resource failure rates almost every sampled die carries a handful
# of defects yet stays warm-repairable.
GOLDEN_SHAPE = (31, 31)
STRESS_RATES = dict(cell_fail=0.0015, wire_fail=0.0006, stuck_fail=0.0006)
# Seeds 23 and 50 draw dies whose defects pin one net against the
# golden placement beyond the repair escalation's reach — they are the
# *provable fallback* fixtures below, and excluded from the warm fleet.
FALLBACK_SEEDS = (23, 50)
STRESS_SEEDS = tuple(
    s for s in range(57) if s not in FALLBACK_SEEDS
)[:50]


def stress_die(seed):
    return sample_defect_map(*GOLDEN_SHAPE, **STRESS_RATES, seed=seed)


def test_stress_fleet_of_50_dies_from_one_golden_compile():
    dies = [stress_die(s) for s in STRESS_SEEDS]
    assert len(dies) == 50
    assert len({dm.digest() for dm in dies}) == 50, "dies must be distinct"
    assert all(dm.n_defects >= 1 for dm in dies), "dies must be defective"

    with CompileService(workers=0, cache_capacity=128) as svc:
        served = [
            svc.compile_for_die(ripple_carry_netlist(8), dm) for dm in dies
        ]
        stats = svc.stats()
        golden = svc.compile(ripple_carry_netlist(8))

    # -- exact accounting: one golden compile, fifty warm repairs.
    assert stats["compiles"] == 1
    assert stats["repairs"] == 50
    assert stats["repair_fallbacks"] == 0
    # Each die submission counts itself plus its golden lookup; die 1's
    # golden lookup is the only cold miss among them.
    assert stats["submissions"] == 100
    assert stats["cache"]["hits"] == 49
    assert stats["cache"]["misses"] == 51
    assert stats["cache"]["lookups"] == 100
    assert golden.cached and not golden.repaired

    # -- every repaired die is a real, clean, verified artifact.
    seen_streams = set()
    for dm, r in zip(dies, served):
        assert r.repaired and not r.cached
        verify_equivalence(r.result, n_vectors=32, event_vectors=1)
        assert_defect_clean(r.result.array, dm)
        seen_streams.add(r.bitstreams()[0])
    # Distinct dies generally need distinct configurations; at minimum
    # the fleet is not one artifact served 50 times.
    assert len(seen_streams) > 25


def test_warm_repair_is_5x_faster_than_cold_defect_aware_compile():
    nl = ripple_carry_netlist(8)
    golden = compile_to_fabric(nl, seed=0, workers=0)
    dies = [stress_die(s) for s in STRESS_SEEDS]

    repair_times = []
    for dm in dies:
        best = min(
            _timed(lambda: repair_for_die(golden, dm, seed=0))
            for _ in range(2)
        )
        repair_times.append(best)

    cold_times = [
        _timed(
            lambda: compile_to_fabric(
                ripple_carry_netlist(8), defect_map=dm, seed=0, workers=0
            )
        )
        for dm in dies[:10]
    ]

    med_repair = statistics.median(repair_times)
    med_cold = statistics.median(cold_times)
    assert med_repair * 5 <= med_cold, (
        f"warm repair must be >= 5x faster than a cold defect-aware "
        f"compile: median repair {med_repair * 1e3:.1f} ms vs median "
        f"cold {med_cold * 1e3:.1f} ms "
        f"({med_cold / med_repair:.1f}x)"
    )


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


# ---------------------------------------------------------------------------
# Die-keyed caching
# ---------------------------------------------------------------------------


def test_resubmitting_a_die_hits_the_cache():
    dm = stress_die(0)
    with CompileService(workers=0, cache_capacity=8) as svc:
        first = svc.compile_for_die(ripple_carry_netlist(8), dm)
        second = svc.compile_for_die(ripple_carry_netlist(8), dm)
        stats = svc.stats()
    assert first.repaired and not first.cached
    assert second.repaired and second.cached
    assert first.bitstreams() == second.bitstreams()
    assert stats["repairs"] == 1
    assert stats["compiles"] == 1


def test_distinct_dies_do_not_share_entries():
    with CompileService(workers=0, cache_capacity=8) as svc:
        a = svc.compile_for_die(ripple_carry_netlist(8), stress_die(0))
        b = svc.compile_for_die(ripple_carry_netlist(8), stress_die(1))
        stats = svc.stats()
    assert a.key != b.key
    assert stats["repairs"] == 2
    assert stats["compiles"] == 1  # still just the one golden


def test_clean_die_entry_is_distinct_from_the_golden_entry():
    # A clean die reproduces the golden bytes but lives under its own
    # die key — the golden artifact is never served *as* a die artifact.
    dm = DefectMap(*GOLDEN_SHAPE)
    with CompileService(workers=0, cache_capacity=8) as svc:
        golden = svc.compile(ripple_carry_netlist(8))
        die = svc.compile_for_die(ripple_carry_netlist(8), dm)
    assert die.key != golden.key
    assert die.repaired and not die.cached
    assert die.bitstreams() == golden.bitstreams()


def test_die_key_composes_hash_options_and_digest():
    nl = ripple_carry_netlist(4)
    with CompileService(workers=0) as svc:
        k0 = svc.die_key(nl, CompileOptions(), stress_die(0))
        k1 = svc.die_key(nl, CompileOptions(), stress_die(1))
        k2 = svc.die_key(nl, CompileOptions(seed=3), stress_die(0))
    assert k0 != k1  # different die
    assert k0 != k2  # different options
    assert k0[-1] == ("die", stress_die(0).digest())


def test_submit_for_die_rejects_sharded_options():
    dm = stress_die(0)
    with CompileService(workers=0) as svc:
        with pytest.raises(ValueError, match="single-array"):
            svc.submit_for_die(
                ripple_carry_netlist(8), dm, CompileOptions(shards=2)
            )
        with pytest.raises(ValueError, match="single-array"):
            svc.submit_for_die(
                ripple_carry_netlist(8), dm, CompileOptions(max_side=16)
            )


# ---------------------------------------------------------------------------
# Coalescing and error propagation
# ---------------------------------------------------------------------------


def test_concurrent_submissions_of_one_die_coalesce():
    dm = stress_die(0)
    futures = [None, None]
    with CompileService(workers=2, cache_capacity=8) as svc:
        barrier = threading.Barrier(2)

        def client(i):
            barrier.wait()
            futures[i] = svc.submit_for_die(ripple_carry_netlist(8), dm)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in (0, 1)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [f.result() for f in futures]
        stats = svc.stats()
    assert results[0].bitstreams() == results[1].bitstreams()
    assert all(r.repaired for r in results)
    assert stats["repairs"] == 1
    assert stats["compiles"] == 1
    assert stats["coalesced"] + stats["cache"]["hits"] >= 1


def test_unrepairable_die_escalates_to_cold_compile_with_accounting():
    # Seeds in FALLBACK_SEEDS jam the warm path; the service must fall
    # back to a cold defect-aware compile and account for it.
    dm = stress_die(FALLBACK_SEEDS[0])
    with CompileService(workers=0, cache_capacity=8) as svc:
        served = svc.compile_for_die(ripple_carry_netlist(8), dm)
        stats = svc.stats()
    assert not served.repaired and not served.cached
    assert stats["repair_fallbacks"] == 1
    assert stats["repairs"] == 0
    assert stats["compiles"] == 2  # golden + cold defect-aware
    verify_equivalence(served.result, n_vectors=32, event_vectors=1)
    assert_defect_clean(served.result.array, dm)


def test_hopeless_die_propagates_the_error_and_is_not_cached():
    rows, cols = GOLDEN_SHAPE
    dead_everything = DefectMap(
        rows, cols,
        dead_cells=[(r, c) for r in range(rows) for c in range(cols)],
    )
    with CompileService(workers=0, cache_capacity=8) as svc:
        with pytest.raises(PnrError):
            svc.compile_for_die(
                ripple_carry_netlist(8), dead_everything,
                CompileOptions(max_attempts=2),
            )
        stats = svc.stats()
        # The failure is not cached: the golden entry is the only one.
        assert stats["cache"]["size"] == 1
        # ...and the same netlist still compiles (golden cache intact).
        ok = svc.compile(ripple_carry_netlist(8), CompileOptions(max_attempts=2))
    assert not ok.repaired and ok.cached


def test_golden_compile_failure_propagates_through_the_die_path():
    from repro.netlist import Netlist

    nl = Netlist("broken")
    nl.add("celement", "c1", ["x", "fb"], "m")
    nl.add("not", "g", ["m"], "fb")  # cell-level feedback: uncompilable
    nl.add_input("x")
    nl.add_output("m")
    with CompileService(workers=0, cache_capacity=8) as svc:
        with pytest.raises(Exception):
            svc.compile_for_die(nl, DefectMap(8, 8))
        stats = svc.stats()
    assert stats["repairs"] == 0
    assert stats["cache"]["size"] == 0
