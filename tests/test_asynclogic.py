"""Tests for micropipelines, handshakes, arbiters and the GALS model."""

import numpy as np
import pytest

from repro.asynclogic.arbiter import (
    MutexElement,
    flops_for_target_mtbf,
    synchronizer_mtbf,
)
from repro.asynclogic.gals import AsyncChannel, ClockDomain, GalsSystem
from repro.asynclogic.handshake import (
    check_four_phase,
    check_two_phase,
    completed_transfers,
)
from repro.asynclogic.micropipeline import MicropipelineSim, PipelineModel
from repro.sim.values import ONE, ZERO
from repro.sim.waveform import TraceSet, Waveform


class TestMicropipelineSim:
    def test_single_token_traverses(self):
        pipe = MicropipelineSim(n_stages=3, data_width=4)
        pipe.push(0b1010)
        pipe.drain()
        assert pipe.output_value() == 0b1010

    def test_fifo_order_preserved(self):
        pipe = MicropipelineSim(n_stages=4, data_width=4)
        seen = []
        for v in [1, 2, 3, 4, 5]:
            pipe.push(v)
            pipe.drain(500)
            seen.append(pipe.output_value())
        assert seen == [1, 2, 3, 4, 5]

    def test_output_token_count(self):
        pipe = MicropipelineSim(n_stages=2, data_width=2)
        for v in [1, 2, 3]:
            pipe.push(v)
        pipe.drain(3000)
        assert pipe.output_tokens() == 3

    def test_handshake_protocol_clean(self):
        pipe = MicropipelineSim(n_stages=3, data_width=2)
        for v in [1, 0, 3]:
            pipe.push(v)
        pipe.drain(3000)
        traces = TraceSet(pipe.sim)
        # Input request versus stage-0 acknowledge (c[0]) must alternate.
        violations = check_two_phase(traces["req_in"], traces["c[0]"])
        assert violations == []
        assert completed_transfers(traces["req_in"], traces["c[0]"]) == 3

    def test_value_range_checked(self):
        pipe = MicropipelineSim(n_stages=1, data_width=2)
        with pytest.raises(ValueError):
            pipe.push(9)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            MicropipelineSim(n_stages=0)

    def test_throughput_matches_token_model(self):
        # Measured steady-state push interval ~ forward + reverse latency.
        pipe = MicropipelineSim(n_stages=4, data_width=2)
        times = [pipe.push(v & 3) for v in range(10)]
        gaps = np.diff(times[2:])  # skip fill transient
        model_fwd = 4 + 2 + 1  # matched delay + C element + ack inverter
        assert gaps.max() <= 6 * model_fwd  # bounded, no stall collapse
        assert gaps.min() > 0


class TestPipelineModel:
    def test_cycle_and_throughput(self):
        m = PipelineModel(n_stages=5, forward_ps=100, reverse_ps=60)
        assert m.cycle_ps == 160
        assert m.throughput_per_ns == pytest.approx(1e3 / 160)

    def test_latency_scales_with_depth(self):
        a = PipelineModel(3, 100, 60)
        b = PipelineModel(6, 100, 60)
        assert b.empty_latency_ps == 2 * a.empty_latency_ps

    def test_occupancy_below_depth(self):
        m = PipelineModel(8, 100, 60)
        assert 0 < m.max_occupancy < 8

    def test_time_for_tokens_affine(self):
        m = PipelineModel(4, 100, 50)
        assert m.time_for_tokens(1) == m.empty_latency_ps
        assert m.time_for_tokens(11) == m.empty_latency_ps + 10 * m.cycle_ps

    def test_elasticity_advantage(self):
        # Synchronous pipeline clocked at worst case 250 ps; micropipeline
        # averages 160 ps: >1 ratio.
        m = PipelineModel(4, 100, 60)
        assert m.against_synchronous(250.0) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineModel(0, 100, 60)
        with pytest.raises(ValueError):
            PipelineModel(3, -1, 60)
        with pytest.raises(ValueError):
            PipelineModel(3, 100, 60).time_for_tokens(0)


class TestHandshakeCheckers:
    def test_clean_two_phase(self):
        req = Waveform("req", [(0, ZERO), (10, ONE), (30, ZERO)])
        ack = Waveform("ack", [(0, ZERO), (20, ONE), (40, ZERO)])
        assert check_two_phase(req, ack) == []

    def test_double_request_flagged(self):
        req = Waveform("req", [(0, ZERO), (10, ONE), (20, ZERO)])
        ack = Waveform("ack", [(0, ZERO)])
        violations = check_two_phase(req, ack)
        assert any(v.kind == "req-out-of-turn" for v in violations)

    def test_clean_four_phase(self):
        req = Waveform("req", [(0, ZERO), (10, ONE), (30, ZERO)])
        ack = Waveform("ack", [(0, ZERO), (20, ONE), (40, ZERO)])
        assert check_four_phase(req, ack) == []

    def test_four_phase_early_req_fall_flagged(self):
        req = Waveform("req", [(0, ZERO), (10, ONE), (15, ZERO)])
        ack = Waveform("ack", [(0, ZERO), (20, ONE), (40, ZERO)])
        assert check_four_phase(req, ack) != []


class TestMutex:
    def test_uncontended_first_wins(self):
        m = MutexElement()
        winner, t = m.request(5.0, 50.0)
        assert winner == 0 and t == 5.0

    def test_single_requester(self):
        m = MutexElement()
        assert m.request(None, 7.0) == (1, 7.0)

    def test_no_requester_rejected(self):
        with pytest.raises(ValueError):
            MutexElement().request(None, None)

    def test_contention_resolves_after_delay(self):
        m = MutexElement(contention_window=2.0, tau=3.0, rng=np.random.default_rng(1))
        winner, t = m.request(10.0, 10.5)
        assert winner in (0, 1)
        assert t > 10.5  # resolution delay added

    def test_contention_fair_ish(self):
        rng = np.random.default_rng(2)
        m = MutexElement(contention_window=2.0, rng=rng)
        wins = [m.request(0.0, 0.1)[0] for _ in range(400)]
        assert 100 < sum(wins) < 300  # both sides win often

    def test_deterministic_given_rng(self):
        a = MutexElement(rng=np.random.default_rng(9)).request(0.0, 0.1)
        b = MutexElement(rng=np.random.default_rng(9)).request(0.0, 0.1)
        assert a == b


class TestSynchronizer:
    def test_mtbf_grows_exponentially_with_resolution(self):
        m1 = synchronizer_mtbf(1e9, 1e8, 1e-9, 50e-12)
        m2 = synchronizer_mtbf(1e9, 1e8, 2e-9, 50e-12)
        assert m2 / m1 == pytest.approx(np.exp(1e-9 / 50e-12), rel=1e-6)

    def test_deeper_synchroniser_for_harder_target(self):
        easy = flops_for_target_mtbf(1.0, 1e9, 1e8, 80e-12)
        hard = flops_for_target_mtbf(1e12, 1e9, 1e8, 80e-12)
        assert hard >= easy

    def test_validation(self):
        with pytest.raises(ValueError):
            synchronizer_mtbf(-1, 1, 1, 1)


class TestGals:
    def test_throughput_set_by_slow_domain(self):
        fast = ClockDomain("fast", period_ps=100)
        slow = ClockDomain("slow", period_ps=300)
        res = GalsSystem(fast, slow).run(1_000_000)
        ideal = GalsSystem(fast, slow).ideal_throughput_per_ns()
        assert res.throughput_per_ns == pytest.approx(ideal, rel=0.05)

    def test_tokens_in_order_and_conserved(self):
        res = GalsSystem(
            ClockDomain("a", 120), ClockDomain("b", 90)
        ).run(500_000)
        assert res.in_order
        assert res.tokens_consumed <= res.tokens_produced
        in_flight = res.tokens_produced - res.tokens_consumed
        assert 0 <= in_flight <= 4 + 1  # bounded by channel capacity

    def test_backpressure_stalls_producer(self):
        fast = ClockDomain("fast", period_ps=50)
        slow = ClockDomain("slow", period_ps=500)
        res = GalsSystem(fast, slow, AsyncChannel("fast", "slow", capacity=2)).run(
            200_000
        )
        assert res.producer_stalls > 0
        assert res.in_order

    def test_sync_latency_delays_first_token(self):
        sys0 = GalsSystem(
            ClockDomain("a", 100),
            ClockDomain("b", 100),
            AsyncChannel("a", "b", sync_cycles=0),
        )
        sys2 = GalsSystem(
            ClockDomain("a", 100),
            ClockDomain("b", 100),
            AsyncChannel("a", "b", sync_cycles=4),
        )
        short = sys0.run(1000).tokens_consumed
        long = sys2.run(1000).tokens_consumed
        assert long <= short

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockDomain("bad", 0)
        with pytest.raises(ValueError):
            AsyncChannel("a", "b", capacity=0)
        with pytest.raises(ValueError):
            GalsSystem(ClockDomain("a", 10), ClockDomain("b", 10)).run(0)
