"""Unit tests for the vectorised DC solvers."""

import numpy as np
import pytest

from repro.circuits.dc import (
    bisect_balance,
    gain_peak,
    output_swing,
    series_pair_current,
    solve_output,
    switching_threshold,
)
from repro.devices.dgmosfet import default_nmos


class TestBisectBalance:
    def test_linear_root(self):
        # f(x) = 1 - 2x, decreasing; root at 0.5.
        root = bisect_balance(lambda x: 1.0 - 2.0 * x, np.zeros(1), np.ones(1))
        assert root[0] == pytest.approx(0.5, abs=1e-12)

    def test_vector_of_roots(self):
        targets = np.linspace(0.1, 0.9, 9)
        root = bisect_balance(lambda x: targets - x, np.zeros(9), np.ones(9))
        np.testing.assert_allclose(root, targets, atol=1e-12)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bisect_balance(lambda x: -x, np.zeros(2), np.ones(3))


class TestSolveOutput:
    def test_matched_resistive_divider(self):
        # Pull-up conductance g_u to VDD, pull-down g_d to ground:
        # balance at VDD * g_u / (g_u + g_d).
        vdd = 1.0
        gu, gd = 2.0, 1.0
        out = solve_output(
            lambda v: gu * (vdd - v),
            lambda v: gd * v,
            vdd,
            (1,),
        )
        assert out[0] == pytest.approx(vdd * gu / (gu + gd), abs=1e-10)


class TestSeriesPair:
    def test_matched_devices_split_voltage(self):
        dev = default_nmos()

        def lower(v_drop, _vm):
            return np.asarray(dev.ids(1.0, v_drop))

        def upper(v_drop, vm):
            return np.asarray(dev.ids(1.0 - vm, v_drop))

        v_total = np.array([0.1])
        i = series_pair_current(lower, upper, v_total)
        # The stack current must be between 0 and the single-device current.
        i_single = dev.ids(1.0, 0.1)
        assert 0 < i[0] < i_single

    def test_stack_current_monotone_in_total_drop(self):
        dev = default_nmos()

        def lower(v_drop, _vm):
            return np.asarray(dev.ids(1.0, v_drop))

        def upper(v_drop, vm):
            return np.asarray(dev.ids(1.0 - vm, v_drop))

        v = np.linspace(0.0, 1.0, 21)
        i = series_pair_current(lower, upper, v)
        assert np.all(np.diff(i) >= -1e-15)

    def test_off_device_blocks_stack(self):
        dev = default_nmos()

        def lower(v_drop, _vm):
            return np.asarray(dev.ids(0.0, v_drop))  # gate low -> off

        def upper(v_drop, vm):
            return np.asarray(dev.ids(1.0 - vm, v_drop))

        i = series_pair_current(lower, upper, np.array([1.0]))
        i_on = dev.ids(1.0, 1.0)
        assert i[0] < 1e-3 * i_on


class TestCurveMetrics:
    def test_threshold_of_ideal_step(self):
        vin = np.linspace(0, 1, 101)
        vout = np.where(vin < 0.42, 1.0, 0.0)
        t = switching_threshold(vin, vout, 1.0)
        assert t == pytest.approx(0.42, abs=0.02)

    def test_threshold_nan_when_stuck(self):
        vin = np.linspace(0, 1, 11)
        assert np.isnan(switching_threshold(vin, np.ones(11), 1.0))
        assert np.isnan(switching_threshold(vin, np.zeros(11), 1.0))

    def test_output_swing(self):
        lo, hi = output_swing(np.array([0.05, 0.5, 0.98]))
        assert lo == pytest.approx(0.05)
        assert hi == pytest.approx(0.98)

    def test_gain_peak_of_linear_curve(self):
        vin = np.linspace(0, 1, 101)
        assert gain_peak(vin, -3.0 * vin) == pytest.approx(3.0, rel=1e-6)
