"""Unit tests for the threshold-variation models."""

import numpy as np
import pytest

from repro.devices.variation import (
    bulk_rdf_sigma_vt,
    config_margin_yield,
    dg_geometric_sigma_vt,
    sample_vt_population,
)


class TestBulkRDF:
    def test_sigma_grows_as_area_shrinks(self):
        big = bulk_rdf_sigma_vt(100.0, 100.0)
        small = bulk_rdf_sigma_vt(10.0, 10.0)
        assert small == pytest.approx(10.0 * big, rel=1e-6)

    def test_vectorised(self):
        lengths = np.array([100.0, 50.0, 20.0, 10.0])
        sigma = bulk_rdf_sigma_vt(lengths, lengths)
        assert sigma.shape == (4,)
        assert np.all(np.diff(sigma) > 0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            bulk_rdf_sigma_vt(0.0, 10.0)

    def test_10nm_rdf_significant(self):
        # At the paper's 10 nm scale, bulk RDF sigma exceeds tens of mV —
        # the motivation for the undoped DG channel.
        assert bulk_rdf_sigma_vt(10.0, 10.0) > 0.03


class TestDGGeometric:
    def test_independent_of_length(self):
        a = dg_geometric_sigma_vt(100.0)
        b = dg_geometric_sigma_vt(10.0)
        assert a == pytest.approx(b)

    def test_beats_bulk_at_nanoscale(self):
        # The paper's Section 3 claim, quantified: at 10 nm the undoped DG
        # device's variation is far below bulk RDF.
        assert dg_geometric_sigma_vt(10.0) < 0.25 * bulk_rdf_sigma_vt(10.0, 10.0)

    def test_scales_with_thickness_control(self):
        loose = dg_geometric_sigma_vt(10.0, thickness_control_pct=10.0)
        tight = dg_geometric_sigma_vt(10.0, thickness_control_pct=2.0)
        assert loose == pytest.approx(5.0 * tight)


class TestSampling:
    def test_deterministic_given_generator(self):
        a = sample_vt_population(100, 0.02, rng=np.random.default_rng(7))
        b = sample_vt_population(100, 0.02, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_moments(self):
        pop = sample_vt_population(200_000, 0.02, vt_nominal=0.25, rng=np.random.default_rng(1))
        assert pop.mean() == pytest.approx(0.25, abs=2e-4)
        assert pop.std() == pytest.approx(0.02, rel=0.02)

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            sample_vt_population(0, 0.02)


class TestConfigYield:
    def test_tight_control_full_yield(self):
        assert config_margin_yield(sigma_vt=0.005) == pytest.approx(1.0, abs=1e-6)

    def test_loose_control_loses_yield(self):
        assert config_margin_yield(sigma_vt=0.3) < 0.9

    def test_monotone_in_sigma(self):
        sigmas = [0.005, 0.02, 0.05, 0.1, 0.2]
        ys = [config_margin_yield(s) for s in sigmas]
        assert ys == sorted(ys, reverse=True)
