"""Chaos closure: service invariants under *any* random fault plan.

The targeted tests in ``tests/test_resilience.py`` pin each hardening
mechanism against a hand-picked fault.  This suite closes the loop the
way ISSUE 10 demands: hypothesis draws arbitrary :class:`FaultPlan`\\ s
— any registered point, any kind, several densities and rates — and a
fresh service (two workers, bounded queue, on-disk store) runs a small
mixed workload under each.  Whatever the plan, four invariants hold:

1. **Every future settles exactly once** — result or a known-taxonomy
   exception, never a hang (the ``settled`` book would double-count a
   twice-settled future and break the identity below).
2. **The books balance**: ``submissions == settled + shed + pending``
   with ``pending == 0`` after the drain, and the cache and store obey
   ``lookups == hits + misses``.
3. **No wrong bytes, ever**: every successful result, cached entry and
   persisted blob is byte-identical to its fault-free reference
   (golden, repaired or cold-defect-aware as appropriate); a corrupted
   blob may only become a quarantined miss, never a served artifact.
4. **Degradation is explicit**: a golden stand-in is always marked
   ``degraded=True``, matches the golden bytes, and is never found in
   the cache or the store.
"""

import shutil
import tempfile

import pytest

pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datapath.adder import ripple_carry_netlist
from repro.pnr import compile_to_fabric, sample_defect_map
from repro.pnr.parallel import (
    FAULT_POINTS,
    CompileTimeout,
    WorkerLost,
)
from repro.service import CompileOptions, CompileService
from repro.service.resilience import (
    FAULT_EXCEPTIONS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    ServiceOverloaded,
)

# -- fault-free references, computed once ----------------------------------
_KW = CompileOptions().compile_kwargs()
RCA2 = ripple_carry_netlist(2)
RCA3 = ripple_carry_netlist(3)
DIE = sample_defect_map(13, 13, cell_fail=0.01, wire_fail=0.004, seed=9)

GOLDEN2 = [compile_to_fabric(RCA2, **_KW).to_bitstream().tobytes()]
GOLDEN3 = [compile_to_fabric(RCA3, **_KW).to_bitstream().tobytes()]
#: The die compiled cold with the defect map (the repair-declined path).
COLD_DIE = [
    compile_to_fabric(RCA2, defect_map=DIE, **_KW).to_bitstream().tobytes()
]

with CompileService(workers=0) as _ref_svc:
    _ref_svc.compile(RCA2)
    _ref = _ref_svc.compile_for_die(RCA2, DIE)
    assert _ref.repaired, "seed-9 die must be repairable fault-free"
    #: The die served through the warm repair path.
    REPAIRED_DIE = _ref.bitstreams()
    _H2 = _ref_svc.job_key(RCA2, CompileOptions())[0]
    _H3 = _ref_svc.job_key(RCA3, CompileOptions())[0]

GOLDEN_BY_HASH = {_H2: GOLDEN2, _H3: GOLDEN3}

KNOWN_EXCEPTIONS = tuple(
    {CompileTimeout, WorkerLost, ServiceOverloaded}
    | set(FAULT_EXCEPTIONS.values())
)


def entry_bytes(entry):
    result = entry.result
    if hasattr(result, "to_bitstreams"):
        streams = result.to_bitstreams()
    else:
        streams = [result.to_bitstream()]
    return [s.tobytes() for s in streams]


def expected_bytes(key, entry):
    """The unique fault-free reference for one cache/store entry."""
    if len(key) == 3 and key[2][0] == "die":
        return REPAIRED_DIE if entry.repaired else COLD_DIE
    return GOLDEN_BY_HASH[key[0]]


# -- the plan strategy ------------------------------------------------------
spec_strategy = st.builds(
    FaultSpec,
    point=st.sampled_from(sorted(FAULT_POINTS)),
    kind=st.sampled_from(FAULT_KINDS),
    rate=st.sampled_from([0.25, 0.5, 1.0]),
    exc=st.sampled_from(sorted(FAULT_EXCEPTIONS)),
    delay=st.sampled_from([0.005, 0.02, 0.05]),
)
plan_strategy = st.builds(
    FaultPlan,
    specs=st.lists(spec_strategy, max_size=4).map(tuple),
    seed=st.integers(min_value=0, max_value=2**16),
)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=plan_strategy)
def test_any_fault_plan_preserves_the_service_invariants(plan):
    root = tempfile.mkdtemp(prefix="chaos-store-")
    svc = CompileService(workers=2, max_pending=4, store=root)
    futures = []
    submit_site_errors = 0
    try:
        with plan.activate():
            for label, job in (
                ("plain2", lambda: svc.submit(RCA2)),
                ("plain3", lambda: svc.submit(RCA3)),
                ("die", lambda: svc.submit_for_die(RCA2, DIE)),
                ("plain2", lambda: svc.submit(RCA2)),  # coalesce pressure
            ):
                try:
                    futures.append((label, job()))
                except KNOWN_EXCEPTIONS:
                    submit_site_errors += 1
            outcomes = []
            for _, f in futures:
                try:
                    outcomes.append(f.result(timeout=60))
                except KNOWN_EXCEPTIONS as e:
                    outcomes.append(e)
        svc.close()

        # 1. Every future settled (result() returned above — a hang
        #    would have tripped the 60s timeout), and only known
        #    taxonomy exceptions came out.
        assert all(f.done() for _, f in futures)

        # 2. The books balance at rest.
        stats = svc.stats()
        assert stats["pending"] == 0
        assert (
            stats["submissions"] == stats["settled"] + stats["shed"]
        ), stats
        cache = stats["cache"]
        assert cache["lookups"] == cache["hits"] + cache["misses"]
        store = stats["store"]
        assert store["lookups"] == store["hits"] + store["misses"]

        # 3 + 4. Byte-audit every successful result against its unique
        # fault-free reference; degraded results are marked, golden and
        # quarantined from the caches.
        for (label, _), out in zip(futures, outcomes):
            if isinstance(out, BaseException):
                continue
            if label == "plain2":
                assert not out.degraded
                assert out.bitstreams() == GOLDEN2
            elif label == "plain3":
                assert not out.degraded
                assert out.bitstreams() == GOLDEN3
            elif out.degraded:
                assert not out.repaired
                assert out.bitstreams() == GOLDEN2, "stand-in is the golden"
            elif out.repaired:
                assert out.bitstreams() == REPAIRED_DIE
            else:
                # A die job that fell back to the cold defect-aware
                # compile (injected RepairFallback, no pressure).
                assert out.bitstreams() == COLD_DIE

        for key, entry in svc.cache.items():
            assert not entry.degraded, "degraded artifacts must not cache"
            assert entry_bytes(entry) == expected_bytes(key, entry)

        fresh = type(svc.store)(root)
        for key in fresh.keys():
            entry = fresh.peek(key)
            if entry is None:
                continue  # corrupted on publish, quarantined on read
            assert not entry.degraded, "degraded artifacts must not persist"
            assert entry_bytes(entry) == expected_bytes(key, entry)
    finally:
        svc.close()
        shutil.rmtree(root, ignore_errors=True)
