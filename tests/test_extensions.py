"""Tests for the extension modules: multiplier and Monte-Carlo yield."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.montecarlo import analytic_cell_yield, compare_device_options
from repro.datapath.multiplier import (
    ShiftAddMultiplier,
    array_multiplier_cost,
    bit_serial_cost,
    shift_add_cost,
    style_comparison,
)
from repro.util.technology import node


class TestShiftAddMultiplier:
    def test_small_products_on_fabric(self):
        mul = ShiftAddMultiplier(3)
        for a, b in [(0, 5), (3, 3), (7, 6), (5, 7), (7, 7)]:
            assert mul.multiply(a, b) == a * b, (a, b)

    def test_identity_cases(self):
        mul = ShiftAddMultiplier(3)
        assert mul.multiply(5, 0) == 0
        assert mul.multiply(5, 1) == 5

    def test_operand_range_checked(self):
        mul = ShiftAddMultiplier(2)
        with pytest.raises(ValueError):
            mul.multiply(4, 1)

    def test_cells_scale_with_product_width(self):
        assert ShiftAddMultiplier(2).cells_used() == 2 * 2 * 2 * 5 / 2  # 2n bits * 5 cells/bit


class TestMultiplierCosts:
    def test_area_ordering(self):
        n = node("65nm")
        costs = {c.style: c for c in style_comparison(16, n)}
        assert costs["bit-serial"].cells < costs["shift-add"].cells < costs["array"].cells

    def test_latency_ordering(self):
        n = node("65nm")
        costs = {c.style: c for c in style_comparison(16, n)}
        assert costs["array"].latency_ps < costs["shift-add"].latency_ps

    def test_area_time_trade_exists(self):
        # No style dominates on both axes: the paper's serial-vs-parallel
        # future-work question is a genuine trade.
        n = node("32nm")
        costs = style_comparison(16, n)
        best_area = min(costs, key=lambda c: c.cells)
        best_time = min(costs, key=lambda c: c.latency_ps)
        assert best_area.style != best_time.style

    def test_validation(self):
        n = node("65nm")
        for fn in (array_multiplier_cost, shift_add_cost, bit_serial_cost):
            with pytest.raises(ValueError):
                fn(0, n)

    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=6, deadline=None)
    def test_random_4bit_products(self, a, b):
        assert ShiftAddMultiplier(4).multiply(a, b) == a * b


class TestMonteCarloYield:
    def test_dg_beats_bulk_at_10nm(self):
        dg, bulk = compare_device_options(n_arrays=50, rng=np.random.default_rng(3))
        assert dg.cell_yield > bulk.cell_yield
        assert dg.block_yield >= bulk.block_yield

    def test_dg_yield_essentially_full(self):
        dg, _ = compare_device_options(n_arrays=50, rng=np.random.default_rng(4))
        assert dg.cell_yield > 0.999

    def test_monte_carlo_matches_analytic(self):
        dg, bulk = compare_device_options(n_arrays=300, rng=np.random.default_rng(5))
        assert dg.cell_yield == pytest.approx(analytic_cell_yield(dg.sigma_vt), abs=0.01)
        assert bulk.cell_yield == pytest.approx(
            analytic_cell_yield(bulk.sigma_vt), abs=0.02
        )

    def test_deterministic(self):
        a = compare_device_options(n_arrays=20, rng=np.random.default_rng(7))
        b = compare_device_options(n_arrays=20, rng=np.random.default_rng(7))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_device_options(n_arrays=0)
