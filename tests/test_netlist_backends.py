"""Backend equivalence and SimLimits tests.

The load-bearing property: for any feedback-free cone of defined-value
logic, the bit-parallel :class:`BatchBackend` and the 4-valued event
scheduler wrapped by :class:`EventBackend` must produce identical
outputs for identical stimulus batches.  Randomised netlists +
randomised stimulus exercise it; hypothesis drives the generation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import (
    BackendError,
    BatchBackend,
    EventBackend,
    Netlist,
    SimLimits,
)
from repro.sim.scheduler import OscillationError
from repro.sim.values import ONE, X, ZERO
from repro.sim.scheduler import Simulator
from repro.sim.primitives import EventLatchGate, NotGate


def random_cone(seed: int, n_inputs: int, n_cells: int) -> Netlist:
    """A random feedback-free NAND/NOT/BUF/XOR cone over n_inputs."""
    rng = np.random.default_rng(seed)
    nl = Netlist(f"cone{seed}")
    nets = [nl.add_input(f"in{i}").name for i in range(n_inputs)]
    for k in range(n_cells):
        kind = ["nand", "not", "buf", "xor"][rng.integers(0, 4)]
        if kind == "nand":
            n_in = int(rng.integers(1, min(4, len(nets)) + 1))
        elif kind == "xor":
            n_in = 2
        else:
            n_in = 1
        ins = [nets[int(i)] for i in rng.integers(0, len(nets), n_in)]
        out = nl.add(kind, f"g{k}", ins, f"n{k}", delay=int(rng.integers(1, 4)))
        nets.append(out.name)
    # Every net is observable; the last few are the "primary" outputs.
    for name in nets[-min(4, len(nets)):]:
        nl.add_output(name)
    return nl


class TestBackendEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_inputs=st.integers(1, 5),
        n_cells=st.integers(1, 24),
        stim_seed=st.integers(0, 2**31 - 1),
    )
    def test_random_cones_agree(self, seed, n_inputs, n_cells, stim_seed):
        nl = random_cone(seed, n_inputs, n_cells)
        rng = np.random.default_rng(stim_seed)
        n_vec = int(rng.integers(1, 130))  # crosses the 64-bit lane boundary
        stimuli = {
            f"in{i}": rng.integers(0, 2, n_vec, dtype=np.uint8)
            for i in range(n_inputs)
        }
        event = EventBackend().evaluate(nl, stimuli)
        batch = BatchBackend().evaluate(nl, stimuli)
        for name in event:
            assert (event[name] == batch[name]).all(), name

    def test_const_and_table_agree(self):
        nl = Netlist("mix")
        a, b = nl.add_input("a"), nl.add_input("b")
        one = nl.add("const", "k1", [], "one", value=1)
        nl.add("table", "t", [a, b, one], "y", table=[0, 1, 1, 0, 1, 0, 0, 1])
        nl.add_output("y")
        stim = {"a": [0, 0, 1, 1], "b": [0, 1, 0, 1]}
        event = EventBackend().evaluate(nl, stim)
        batch = BatchBackend().evaluate(nl, stim)
        assert (event["y"] == batch["y"]).all()

    def test_empty_nand_row_is_pulled_up(self):
        # The fabric convention: a NAND row with no crosspoints rests at 1.
        nl = Netlist()
        nl.add_input("tick")
        nl.add("nand", "g", [], "y")
        nl.add_output("y")
        for backend in (EventBackend(), BatchBackend()):
            assert backend.evaluate(nl, {"tick": [0]})["y"][0] == ONE


class TestBatchFallback:
    def _tristate_bus(self) -> Netlist:
        nl = Netlist("bus")
        for p in ("d0", "e0", "d1", "e1"):
            nl.add_input(p)
        nl.add("tristate", "t0", ["d0", "e0"], "bus")
        nl.add("tristate", "t1", ["d1", "e1"], "bus")
        nl.add_output("bus")
        return nl

    def test_tristate_falls_back_to_event(self):
        nl = self._tristate_bus()
        ok, reason = BatchBackend().supports(nl)
        assert not ok and "tristate" in reason
        res = BatchBackend().evaluate(
            nl, {"d0": [1, 0], "e0": [1, 0], "d1": [0, 0], "e1": [0, 1]}
        )
        assert list(res["bus"]) == [ONE, ZERO]

    def test_x_stimulus_falls_back_to_event(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add("not", "g", ["a"], "y")
        nl.add_output("y")
        res = BatchBackend().evaluate(nl, {"a": [ZERO, ONE, X]})
        assert list(res["y"]) == [ONE, ZERO, X]

    def test_strict_compile_raises(self):
        with pytest.raises(BackendError, match="not batch-evaluable"):
            BatchBackend().compile(self._tristate_bus())


class TestSimLimits:
    def _unstable_ring(self) -> Netlist:
        # q = latch(NOT q) with req == ack: transparent, toggles forever.
        nl = Netlist("unstable-ring")
        nl.add_input("en")
        nl.add("not", "inv", ["q"], "qn")
        nl.add("eventlatch", "lat", ["qn", "en", "en"], "q", init=0)
        nl.add_output("q")
        return nl

    def test_oscillation_fires_through_both_backends(self):
        ring = self._unstable_ring()
        limits = SimLimits(max_time=2_000)
        for backend in (EventBackend(limits), BatchBackend(limits)):
            with pytest.raises(OscillationError):
                backend.evaluate(ring, {"en": [1]})

    def test_stable_enable_settles(self):
        ring = self._unstable_ring()
        # en = 0: req != ack never... req == ack == 0 holds the latch shut?
        # With en=0 the phases still agree, so the latch stays transparent
        # and oscillates; break the loop by keeping din undefined instead.
        nl = Netlist("stable")
        nl.add_input("en")
        nl.add("eventlatch", "lat", ["d", "en", "en"], "q", init=0)
        nl.add_output("q")
        res = EventBackend(SimLimits(max_time=2_000)).evaluate(nl, {"en": [1]})
        assert res["q"][0] == ZERO  # din undefined: latch holds its init
        del ring

    def test_simulator_threads_limits(self):
        limits = SimLimits(max_events_per_time=123, max_events=456, max_time=789)
        sim = Simulator(limits=limits)
        assert sim.limits.max_events_per_time == 123

    def test_simulator_run_caps_events(self):
        sim = Simulator(limits=SimLimits(max_events=50))
        en = sim.net("en")
        qn, q = sim.net("qn"), sim.net("q")
        sim.add(NotGate("inv", [q], qn))
        sim.add(EventLatchGate("lat", [qn, en, en], q, init=ZERO))
        sim.drive(en, ONE)
        with pytest.raises(OscillationError, match="does not quiesce"):
            sim.run()

    def test_limits_validated(self):
        with pytest.raises(ValueError, match="max_events"):
            SimLimits(max_events=0)


class TestFabricThroughBackends:
    def test_adder_batch_matches_event(self):
        from repro.datapath.adder import RippleCarryAdder

        rng = np.random.default_rng(5)
        a = rng.integers(0, 16, 40)
        b = rng.integers(0, 16, 40)
        adder = RippleCarryAdder(4)
        batch = adder.add_batch(a, b)
        assert (batch == a + b).all()
        # Spot-check the event path on the same platform design.
        other = RippleCarryAdder(4)
        for x, y in [(0, 0), (7, 9), (15, 15)]:
            assert other.add(x, y) == x + y

    def test_micropipeline_netlist_elaborates_everywhere(self):
        from repro.asynclogic.micropipeline import micropipeline_netlist

        nl, ports = micropipeline_netlist(3, data_width=2)
        ok, reason = BatchBackend().supports(nl)
        assert not ok  # stateful cells: batch must decline...
        assert "celement" in reason or "eventlatch" in reason
        # ...and the shared netlist still runs on the event engine.
        sim = EventBackend().elaborate(nl)
        sim.drive(ports["req_in"], ZERO)
        for n in ports["data_in"]:
            sim.drive(n, ZERO)
        sim.run(until=50)
        assert sim.value(ports["c"][0]) == ZERO
