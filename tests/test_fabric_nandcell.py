"""Unit tests for the 6x6 polymorphic NAND cell."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.driver import DriverMode
from repro.fabric.leafcell import LeafState
from repro.fabric.nandcell import CellConfig, N_ROWS
from repro.sim.values import ONE, X, Z, ZERO

bits6 = st.lists(st.sampled_from([ZERO, ONE]), min_size=6, max_size=6)


class TestRowSemantics:
    """Row behaviour must reproduce the Fig. 4 configuration table."""

    def test_blank_cell_rows_are_const1(self):
        cfg = CellConfig()
        assert all(cfg.row_kind(r) == "const1" for r in range(N_ROWS))
        assert cfg.row_values([ZERO] * 6) == [ONE] * 6

    def test_nand_of_selected_columns(self):
        cfg = CellConfig().set_product(0, [0, 1])
        assert cfg.row_values([ONE, ONE, ZERO, ZERO, ZERO, ZERO])[0] == ZERO
        assert cfg.row_values([ONE, ZERO, ZERO, ZERO, ZERO, ZERO])[0] == ONE
        assert cfg.row_values([ZERO, ZERO, ZERO, ZERO, ZERO, ZERO])[0] == ONE

    def test_force_on_column_excluded(self):
        # Fig. 4: B forced on -> row computes NOT A regardless of B.
        cfg = CellConfig().set_product(0, [0])
        for b in (ZERO, ONE):
            assert cfg.row_values([ONE, b, ZERO, ZERO, ZERO, ZERO])[0] == ZERO
            assert cfg.row_values([ZERO, b, ZERO, ZERO, ZERO, ZERO])[0] == ONE

    def test_constant_rows(self):
        cfg = CellConfig()
        cfg.set_constant(0, 1)
        cfg.set_constant(1, 0)
        vals = cfg.row_values([ONE] * 6)
        assert vals[0] == ONE
        assert vals[1] == ZERO

    def test_any_force_off_kills_row(self):
        cfg = CellConfig().set_product(0, [0, 1, 2])
        cfg.crosspoints[0][1] = LeafState.FORCE_OFF
        assert cfg.row_kind(0) == "const1"
        assert cfg.row_values([ONE] * 6)[0] == ONE

    def test_six_wide_product(self):
        cfg = CellConfig().set_product(0, list(range(6)))
        assert cfg.row_values([ONE] * 6)[0] == ZERO
        for k in range(6):
            v = [ONE] * 6
            v[k] = ZERO
            assert cfg.row_values(v)[0] == ONE

    @given(bits=bits6, cols=st.sets(st.integers(0, 5), min_size=1, max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_row_matches_boolean_nand(self, bits, cols):
        cfg = CellConfig().set_product(0, sorted(cols))
        expect = ZERO if all(bits[c] == ONE for c in cols) else ONE
        assert cfg.row_values(bits)[0] == expect


class TestDrivers:
    def test_off_driver_is_z(self):
        cfg = CellConfig().set_product(0, [0])
        assert cfg.output_values([ONE] * 6)[0] == Z

    def test_invert_recovers_and(self):
        cfg = CellConfig().set_product(0, [0, 1])
        cfg.drivers[0] = DriverMode.INVERT
        # Row is NAND(a, b); INVERT driver gives AND(a, b).
        assert cfg.output_values([ONE, ONE, ZERO, ZERO, ZERO, ZERO])[0] == ONE
        assert cfg.output_values([ONE, ZERO, ZERO, ZERO, ZERO, ZERO])[0] == ZERO

    def test_buffer_passes_nand(self):
        cfg = CellConfig().set_product(0, [0, 1])
        cfg.drivers[0] = DriverMode.BUFFER
        assert cfg.output_values([ONE, ONE, ZERO, ZERO, ZERO, ZERO])[0] == ZERO

    def test_feedthrough_pattern(self):
        # Single-column row + INVERT driver = non-inverting feed-through:
        # the paper's "data feed-through from an adjacent cell".
        cfg = CellConfig().set_product(2, [4])
        cfg.drivers[2] = DriverMode.INVERT
        v = [ZERO] * 6
        v[4] = ONE
        assert cfg.output_values(v)[2] == ONE
        v[4] = ZERO
        assert cfg.output_values(v)[2] == ZERO

    def test_x_propagates_through_driver(self):
        cfg = CellConfig().set_product(0, [0])
        cfg.drivers[0] = DriverMode.BUFFER
        assert cfg.output_values([X, ZERO, ZERO, ZERO, ZERO, ZERO])[0] == X


class TestConfigHelpers:
    def test_validation_passes_default(self):
        CellConfig().validate()

    def test_set_product_validates(self):
        with pytest.raises(ValueError):
            CellConfig().set_product(9, [0])
        with pytest.raises(ValueError):
            CellConfig().set_product(0, [])
        with pytest.raises(ValueError):
            CellConfig().set_product(0, [7])

    def test_set_constant_validates(self):
        with pytest.raises(ValueError):
            CellConfig().set_constant(0, 2)

    def test_bad_lfb_tap_caught(self):
        cfg = CellConfig()
        cfg.lfb_taps[0] = 11
        with pytest.raises(ValueError):
            cfg.validate()

    def test_active_columns(self):
        cfg = CellConfig().set_product(3, [1, 4])
        assert cfg.active_columns(3) == [1, 4]
        assert cfg.active_columns(0) == []  # const1 row

    def test_used_rows_tracks_drivers_and_taps(self):
        cfg = CellConfig().set_product(0, [0]).set_product(3, [1])
        cfg.drivers[0] = DriverMode.BUFFER
        cfg.lfb_taps[1] = 3
        assert cfg.used_rows() == [0, 3]

    def test_leaf_count_blank_is_zero(self):
        cfg = CellConfig()
        assert cfg.leaf_count() == 0
        assert cfg.is_blank()

    def test_leaf_count_counts_configuration(self):
        cfg = CellConfig().set_product(0, [0, 1])
        cfg.drivers[0] = DriverMode.INVERT
        # Row 0: 6 non-default crosspoints (2 active + 4 tied high) + driver.
        assert cfg.leaf_count() == 7
        assert not cfg.is_blank()

    def test_sketch_round_trip(self):
        rows = ["AA^^^^", "......", "^^^^^^", "A^^^^^", "......", "......"]
        cfg = CellConfig.from_sketch_rows(rows)
        assert cfg.row_kind(0) == "nand"
        assert cfg.row_kind(1) == "const1"
        assert cfg.row_kind(2) == "const0"
        assert cfg.active_columns(3) == [0]
        assert "row0 [AA^^^^]" in cfg.sketch()

    def test_from_sketch_validates_shape(self):
        with pytest.raises(ValueError):
            CellConfig.from_sketch_rows(["AAAAAA"])

    def test_row_values_input_length_checked(self):
        with pytest.raises(ValueError):
            CellConfig().row_values([ONE] * 3)


class TestFig4TableOnCell:
    """The cell-level restatement of the Fig. 4 two-input table."""

    def table_output(self, cfg, a, b):
        return cfg.row_values([a, b, ZERO, ZERO, ZERO, ZERO])[0]

    def test_nand_config(self):
        cfg = CellConfig().set_product(0, [0, 1])
        assert self.table_output(cfg, ONE, ONE) == ZERO
        assert self.table_output(cfg, ONE, ZERO) == ONE

    def test_not_a_config(self):
        cfg = CellConfig().set_product(0, [0])  # B tied high
        assert self.table_output(cfg, ONE, ONE) == ZERO
        assert self.table_output(cfg, ZERO, ONE) == ONE
        assert self.table_output(cfg, ZERO, ZERO) == ONE

    def test_const_one_config(self):
        cfg = CellConfig().set_constant(0, 1)
        for a in (ZERO, ONE):
            for b in (ZERO, ONE):
                assert self.table_output(cfg, a, b) == ONE

    def test_const_zero_config(self):
        cfg = CellConfig().set_constant(0, 0)
        for a in (ZERO, ONE):
            for b in (ZERO, ONE):
                assert self.table_output(cfg, a, b) == ZERO
