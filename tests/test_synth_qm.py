"""Unit tests for the Quine-McCluskey/Petrick minimiser."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.qm import (
    Implicant,
    cover_is_correct,
    cover_to_table,
    minimise,
    prime_implicants,
)
from repro.synth.truthtable import TruthTable


class TestImplicant:
    def test_covers(self):
        p = Implicant(mask=0b011, value=0b001)  # x0 . x1'
        assert p.covers(0b001)
        assert p.covers(0b101)
        assert not p.covers(0b011)

    def test_literals(self):
        p = Implicant(mask=0b101, value=0b100)
        assert p.literals(3) == [(0, False), (2, True)]

    def test_to_string(self):
        p = Implicant(mask=0b011, value=0b001)
        assert p.to_string() == "x0.x1'"
        assert Implicant(0, 0).to_string() == "1"
        assert p.to_string(names=["a", "b", "c"]) == "a.b'"

    def test_n_literals(self):
        assert Implicant(0b1011, 0).n_literals() == 3


class TestKnownMinimisations:
    def test_xor_needs_two_products(self):
        t = TruthTable.from_function(2, lambda a, b: a ^ b)
        cover = minimise(t)
        assert len(cover) == 2
        assert cover_is_correct(t, cover)

    def test_and_is_single_product(self):
        t = TruthTable.from_function(3, lambda a, b, c: a and b and c)
        cover = minimise(t)
        assert len(cover) == 1
        assert cover[0].n_literals() == 3

    def test_majority_three_products(self):
        t = TruthTable.from_function(3, lambda a, b, c: (a + b + c) >= 2)
        cover = minimise(t)
        assert len(cover) == 3  # ab + ac + bc
        assert cover_is_correct(t, cover)

    def test_parity3_four_products(self):
        t = TruthTable.from_function(3, lambda a, b, c: (a + b + c) % 2 == 1)
        cover = minimise(t)
        assert len(cover) == 4  # parity has no merging
        assert all(p.n_literals() == 3 for p in cover)

    def test_constant_one(self):
        cover = minimise(TruthTable.constant(3, 1))
        assert cover == [Implicant(0, 0)]

    def test_constant_zero(self):
        assert minimise(TruthTable.constant(3, 0)) == []

    def test_classic_redundancy_collapses(self):
        # f = a'b' + ab + a'b = a' + b: 2 products.
        t = TruthTable.from_function(2, lambda a, b: (not a) or b)
        cover = minimise(t)
        assert len(cover) == 2
        assert cover_is_correct(t, cover)

    def test_single_minterm(self):
        t = TruthTable.from_minterms(4, [9])
        cover = minimise(t)
        assert len(cover) == 1
        assert cover[0].covers(9)


class TestPrimeImplicants:
    def test_majority_primes(self):
        t = TruthTable.from_function(3, lambda a, b, c: (a + b + c) >= 2)
        primes = prime_implicants(t)
        # Exactly ab, ac, bc.
        assert len(primes) == 3
        assert all(p.n_literals() == 2 for p in primes)

    def test_constant_zero_no_primes(self):
        assert prime_implicants(TruthTable.constant(2, 0)) == []

    def test_all_primes_inside_onset(self):
        rng = np.random.default_rng(5)
        t = TruthTable.random(4, rng)
        for p in prime_implicants(t):
            for m in range(16):
                if p.covers(m):
                    assert t.outputs[m] == 1


class TestExactnessProperties:
    @given(seed=st.integers(0, 100_000), n=st.integers(1, 4))
    @settings(max_examples=120, deadline=None)
    def test_cover_always_correct(self, seed, n):
        t = TruthTable.random(n, np.random.default_rng(seed))
        cover = minimise(t)
        assert cover_is_correct(t, cover)

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_minimality_against_brute_force_3vars(self, seed):
        # Exhaustively verify no smaller prime cover exists (3 vars only).
        from itertools import combinations

        t = TruthTable.random(3, np.random.default_rng(seed))
        cover = minimise(t)
        primes = prime_implicants(t)
        ones = t.minterms()
        if not ones:
            assert cover == []
            return
        for size in range(len(cover)):
            for subset in combinations(primes, size):
                covered = all(any(p.covers(m) for p in subset) for m in ones)
                assert not covered, (
                    f"found smaller cover of size {size} < {len(cover)}"
                )

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_three_var_functions_fit_one_cell_pair(self, seed):
        # The architecture relies on any 3-variable function mapping onto
        # the pair's 6 product rows; the worst case (parity) needs 4.
        t = TruthTable.random(3, np.random.default_rng(seed))
        assert len(minimise(t)) <= 6

    def test_cover_to_table_round_trip(self):
        t = TruthTable.from_minterms(3, [0, 3, 5, 6])
        assert cover_to_table(3, minimise(t)) == t
