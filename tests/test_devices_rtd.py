"""Unit tests for the RTD and multi-peak RTD models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.rtd import RTD, MultiPeakRTD, RTDParams


class TestSinglePeak:
    def test_zero_bias_zero_current(self):
        assert RTD().current(0.0) == pytest.approx(0.0, abs=1e-18)

    def test_odd_symmetry(self):
        rtd = RTD()
        v = np.linspace(0.01, 2.0, 50)
        np.testing.assert_allclose(
            np.asarray(rtd.current(-v)), -np.asarray(rtd.current(v)), rtol=1e-12
        )

    def test_peak_location_and_height(self):
        p = RTDParams(peak_voltage=0.35, peak_current=40e-12)
        vp, ip = RTD(p).peak_point()
        assert vp == pytest.approx(0.35, abs=0.02)
        assert ip == pytest.approx(40e-12, rel=0.05)

    def test_ndr_region_exists(self):
        rtd = RTD()
        v = np.linspace(0.01, 1.2, 2001)
        g = np.asarray(rtd.differential_conductance(v))
        assert np.any(g < 0.0)

    def test_valley_below_peak(self):
        rtd = RTD()
        _, ip = rtd.peak_point()
        _, iv = rtd.valley_point()
        assert iv < ip

    def test_measured_pvcr_reasonable(self):
        # Modelled PVCR should be of the order of the parameter value.
        rtd = RTD(RTDParams(valley_ratio=8.0))
        assert 2.0 < rtd.measured_pvcr() < 20.0

    def test_second_rise_after_valley(self):
        rtd = RTD()
        vv, iv = rtd.valley_point()
        assert rtd.current(vv + 1.5) > 5 * iv

    def test_rejects_pvcr_below_one(self):
        with pytest.raises(ValueError):
            RTDParams(valley_ratio=0.5)


class TestMultiPeak:
    def test_peak_count_matches_request(self):
        for n in (1, 2, 3, 4):
            dev = MultiPeakRTD(n)
            assert dev.count_ndr_regions() == n

    def test_peak_positions_ascending(self):
        dev = MultiPeakRTD(3)
        vp = dev.peak_voltages
        assert np.all(np.diff(vp) > 0)

    def test_odd_symmetry(self):
        dev = MultiPeakRTD(2)
        v = np.linspace(0.01, 3.0, 40)
        np.testing.assert_allclose(
            np.asarray(dev.current(-v)), -np.asarray(dev.current(v)), rtol=1e-12
        )

    def test_rejects_zero_peaks(self):
        with pytest.raises(ValueError):
            MultiPeakRTD(0)

    def test_scalar_in_scalar_out(self):
        assert isinstance(MultiPeakRTD(2).current(0.5), float)


class TestPropertyBased:
    @given(v=st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=200, deadline=None)
    def test_current_finite(self, v):
        assert np.isfinite(RTD().current(v))

    @given(
        n=st.integers(min_value=1, max_value=6),
        v=st.floats(min_value=-5.0, max_value=5.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_multipeak_sign_matches_bias(self, n, v):
        i = MultiPeakRTD(n).current(v)
        if v > 1e-6:
            assert i >= 0.0
        elif v < -1e-6:
            assert i <= 0.0
