"""Tests for the incremental-cost PnR engine (`repro.pnr` hot paths).

Covers the correctness contracts the perf rework leans on:

* the cached delta-HPWL structure (:class:`repro.pnr.place.IncrementalHpwl`)
  stays *exactly* equal to a from-scratch ``hpwl()`` / ``weighted_hpwl()``
  recompute after any random move sequence (hypothesis property);
* the annealing temperature ladder starts at ``t_start`` (step 0 used to
  run one cooling step below it);
* greedy seeding is bit-reproducible for a seed, and whole compiles are
  deterministic;
* warm journal replay reproduces routes exactly when nothing moved;
* parallel shard compilation produces byte-identical bitstreams to a
  serial compile.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datapath.adder import ripple_carry_netlist
from repro.fabric.floorplan import Region
from repro.netlist import Netlist
from repro.pnr import compile_sharded, compile_to_fabric, map_netlist
from repro.pnr.flow import suggest_array
from repro.pnr.parallel import parallel_map, resolve_workers
from repro.pnr.place import (
    BatchMoveEvaluator,
    IncrementalHpwl,
    Placement,
    anneal_placement,
    anneal_temperatures,
    hpwl,
    initial_placement,
    weighted_hpwl,
)
from repro.pnr.route import Router


def small_design():
    """A mapped rca4: ~50 gates, enough net shapes to stress the cache."""
    return map_netlist(ripple_carry_netlist(4))


def seeded_placement(design):
    array = suggest_array(design)
    region = Region("t", 0, 0, array.n_rows, array.n_cols)
    return array, region, initial_placement(design, region, random.Random(0))


# ----------------------------------------------------------------------
# Incremental cost correctness
# ----------------------------------------------------------------------

class TestIncrementalHpwl:
    def test_initial_total_matches_scratch(self):
        design = small_design()
        _, _, placement = seeded_placement(design)
        inc = IncrementalHpwl(design, placement)
        assert inc.total == pytest.approx(hpwl(design, placement))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 30),
                              st.integers(0, 30)), min_size=1, max_size=60))
    def test_delta_equals_scratch_after_any_move_sequence(self, moves):
        """Property: cached total == hpwl() recomputed, move by move.

        Cost math does not care about legality, so moves land anywhere
        in the region — including on top of other gates — and the cache
        must stay exact regardless.
        """
        design = small_design()
        _, region, placement = seeded_placement(design)
        inc = IncrementalHpwl(design, placement)
        names = list(design.gates)
        positions = dict(placement.positions)
        for pick, r, c in moves:
            name = names[pick % len(names)]
            target = (region.row + r % region.n_rows,
                      region.col + c % region.n_cols)
            inc.move(name, target)
            positions[name] = target
            scratch = hpwl(
                design, Placement(region=region, positions=positions)
            )
            assert inc.total == pytest.approx(scratch), (name, target)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 30),
                           st.integers(0, 30)), min_size=1, max_size=40),
        st.integers(0, 2**31),
    )
    def test_weighted_delta_equals_scratch(self, moves, wseed):
        design = small_design()
        _, region, placement = seeded_placement(design)
        wrng = random.Random(wseed)
        weights = {
            net: round(1.0 + 3.0 * wrng.random(), 3)
            for net in design.sinks_of
        }
        inc = IncrementalHpwl(design, placement, weights)
        names = list(design.gates)
        positions = dict(placement.positions)
        for pick, r, c in moves:
            name = names[pick % len(names)]
            target = (region.row + r % region.n_rows,
                      region.col + c % region.n_cols)
            inc.move(name, target)
            positions[name] = target
        scratch = weighted_hpwl(
            design, Placement(region=region, positions=positions), weights
        )
        assert inc.total == pytest.approx(scratch)


# ----------------------------------------------------------------------
# Batched move evaluation
# ----------------------------------------------------------------------

class TestBatchedEvaluator:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 2**31),
        st.sampled_from([7, 64, 256, 768]),
    )
    def test_batched_deltas_match_sequential_replay(self, seed, k):
        """Property: every delta the batched annealer committed is exactly
        the delta a fresh ``IncrementalHpwl`` computes replaying the same
        move sequence one move at a time — for any seed and batch size."""
        design = small_design()
        _, _, placement = seeded_placement(design)
        log: list = []
        refined = anneal_placement(
            design, placement, random.Random(seed), batch_moves=k,
            move_log=log,
        )
        replay = IncrementalHpwl(design, placement)
        for name, target, delta in log:
            assert replay.move(name, target) == delta, (name, target)
        assert replay.total == pytest.approx(hpwl(design, refined))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31), st.integers(1, 200))
    def test_propose_batch_matches_scalar_propose(self, seed, k):
        """propose_batch prices exactly like k scalar propose() calls."""
        design = small_design()
        _, region, placement = seeded_placement(design)
        cost = IncrementalHpwl(design, placement)
        evaluator = BatchMoveEvaluator(cost)
        gen = np.random.Generator(np.random.PCG64(seed))
        gis = gen.integers(0, len(cost.names), k)
        trs = gen.integers(region.row, region.row + region.n_rows, k)
        tcs = gen.integers(region.col, region.col + region.n_cols, k)
        deltas, _ = evaluator.propose_batch(gis, trs, tcs)
        for j in range(k):
            want, _ = cost.propose(int(gis[j]), int(trs[j]), int(tcs[j]))
            assert deltas[j] == want, (j, int(gis[j]))

    def test_batched_cache_equals_scratch_after_anneal(self):
        design = small_design()
        _, _, placement = seeded_placement(design)
        refined = anneal_placement(
            design, placement, random.Random(3), batch_moves=128
        )
        assert hpwl(design, refined) <= hpwl(design, placement)
        from repro.pnr.place import dominance_violations

        assert dominance_violations(design, refined) == 0

    def test_scalar_path_still_available(self):
        """batch_moves=0 selects the legacy scalar loop (debug path)."""
        design = small_design()
        _, _, placement = seeded_placement(design)
        a = anneal_placement(design, placement, random.Random(5),
                             batch_moves=0)
        b = anneal_placement(design, placement, random.Random(5),
                             batch_moves=0)
        assert a.positions == b.positions
        assert hpwl(design, a) <= hpwl(design, placement)


# ----------------------------------------------------------------------
# Parallel-tempering fleet
# ----------------------------------------------------------------------

class TestTemperFleet:
    def test_fleet_byte_identical_across_worker_counts(self):
        """replicas=4 must give identical results for workers in 1/2/4."""
        design = small_design()
        _, _, placement = seeded_placement(design)
        reference = None
        ref_stats = None
        for workers in (1, 2, 4):
            stats: dict = {}
            out = anneal_placement(
                design, placement, random.Random(11), replicas=4,
                workers=workers, stats=stats,
            )
            if reference is None:
                reference = out.positions
                ref_stats = {
                    k: stats[k] for k in
                    ("evaluated", "accepted", "exchange_attempts",
                     "exchange_accepted")
                }
            else:
                assert out.positions == reference, f"workers={workers}"
                for key, val in ref_stats.items():
                    assert stats[key] == val, (workers, key)

    def test_fleet_bitstreams_identical_across_worker_counts(self):
        """Whole compiles with a replica fleet are worker-invariant."""
        netlist = ripple_carry_netlist(4)
        bits = [
            compile_to_fabric(
                netlist, seed=5, replicas=4, workers=w
            ).to_bitstream()
            for w in (1, 2, 4)
        ]
        assert np.array_equal(bits[0], bits[1])
        assert np.array_equal(bits[0], bits[2])

    def test_single_replica_ignores_workers(self):
        """replicas=1 is the plain path whatever the worker knob says."""
        design = small_design()
        _, _, placement = seeded_placement(design)
        a = anneal_placement(design, placement, random.Random(2),
                             replicas=1, workers=0)
        b = anneal_placement(design, placement, random.Random(2),
                             replicas=1, workers=4)
        c = anneal_placement(design, placement, random.Random(2))
        assert a.positions == b.positions == c.positions

    def test_fleet_never_worse_than_its_cold_replica(self):
        """The fleet keeps the best replica, which cools at the base
        ladder — so it can only match or beat the single-replica run
        on the annealing objective it optimizes (weighted HPWL)."""
        design = small_design()
        _, _, placement = seeded_placement(design)
        single = anneal_placement(design, placement, random.Random(9))
        fleet = anneal_placement(design, placement, random.Random(9),
                                 replicas=3)
        assert hpwl(design, fleet) <= hpwl(design, single)

    def test_exchange_counters_populated(self):
        design = small_design()
        _, _, placement = seeded_placement(design)
        stats: dict = {}
        anneal_placement(design, placement, random.Random(1), replicas=3,
                         exchange_rounds=4, stats=stats)
        assert stats["replicas"] == 3
        assert stats["rounds"] == 4
        assert stats["exchange_attempts"] >= stats["exchange_accepted"] >= 0
        assert stats["evaluated"] > 0


# ----------------------------------------------------------------------
# Parallel helpers
# ----------------------------------------------------------------------

class TestParallelHelpers:
    def test_resolve_workers_contract(self):
        assert resolve_workers(1, None) == 1
        assert resolve_workers(5, None) >= 1
        assert resolve_workers(5, 0) == 1
        assert resolve_workers(5, 1) == 1
        assert resolve_workers(5, 3) == 3
        assert resolve_workers(5, 99) == 5

    def test_parallel_map_matches_serial(self):
        items = list(range(17))
        want = [x * x for x in items]
        assert parallel_map(lambda x: x * x, items, 0) == want
        assert parallel_map(lambda x: x * x, items, 4) == want

    def test_parallel_map_propagates_errors(self):
        def boom(x):
            raise ValueError(f"x={x}")

        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2], 2)


# ----------------------------------------------------------------------
# Annealing schedule + determinism
# ----------------------------------------------------------------------

class TestSchedule:
    def test_first_temperature_is_t_start(self):
        temps = anneal_temperatures(100, t_start=8.0, t_end=0.05)
        assert temps[0] == 8.0
        assert temps[-1] == pytest.approx(0.05)
        assert all(a > b for a, b in zip(temps, temps[1:]))

    def test_single_step_runs_at_t_start(self):
        assert anneal_temperatures(1, 8.0, 0.05) == [8.0]

    def test_anneal_never_worse_and_legal(self):
        design = small_design()
        _, _, placement = seeded_placement(design)
        refined = anneal_placement(design, placement, random.Random(1))
        from repro.pnr.place import dominance_violations

        assert dominance_violations(design, refined) == 0
        assert hpwl(design, refined) <= hpwl(design, placement)


class TestDeterminism:
    def test_seed_is_bit_reproducible(self):
        """Same rng seed -> identical greedy placement, every time."""
        design = small_design()
        array = suggest_array(design)
        region = Region("t", 0, 0, array.n_rows, array.n_cols)
        a = initial_placement(design, region, random.Random(42))
        b = initial_placement(design, region, random.Random(42))
        assert a.positions == b.positions

    def test_distinct_salts_explore_distinct_seeds(self):
        """Different rng seeds may differ — that is the retry ladder's
        diversity — but each must be individually reproducible."""
        design = small_design()
        array = suggest_array(design)
        region = Region("t", 0, 0, array.n_rows, array.n_cols)
        for s in (0, 1, 7):
            a = initial_placement(design, region, random.Random(s))
            b = initial_placement(design, region, random.Random(s))
            assert a.positions == b.positions

    def test_full_compile_deterministic(self):
        r1 = compile_to_fabric(ripple_carry_netlist(4), seed=3)
        r2 = compile_to_fabric(ripple_carry_netlist(4), seed=3)
        assert r1.placement.positions == r2.placement.positions
        assert np.array_equal(r1.to_bitstream(), r2.to_bitstream())


# ----------------------------------------------------------------------
# Warm journal replay
# ----------------------------------------------------------------------

class TestWarmReplay:
    def test_unmoved_design_replays_routes_exactly(self):
        design = small_design()
        array, region, placement = seeded_placement(design)
        rng = random.Random(0)
        placement = anneal_placement(design, placement, rng)
        shape = (array.n_rows, array.n_cols)
        first = Router(design, placement, shape, region,
                       rng=random.Random(1))
        routes = first.route_design(strict=True)
        second = Router(design, placement, shape, region,
                        rng=random.Random(2),
                        warm_routes=routes, warm_moved=set())
        replayed = second.route_design(strict=True)
        assert set(replayed) == set(routes)
        for net, route in routes.items():
            assert replayed[net].wires == route.wires, net
            assert replayed[net].sink_cols == route.sink_cols, net
            assert replayed[net].entry_wire == route.entry_wire, net

    def test_timing_driven_compile_verifies(self):
        """The warm-started ladder still produces a correct fabric."""
        res = compile_to_fabric(
            ripple_carry_netlist(4), seed=0, timing_driven=True
        )
        report = res.verify(n_vectors=256, event_vectors=2)
        assert report["ok"]
        base = compile_to_fabric(ripple_carry_netlist(4), seed=0)
        assert res.stats.cycle_time <= base.stats.cycle_time


# ----------------------------------------------------------------------
# Parallel shard compilation
# ----------------------------------------------------------------------

class TestParallelShards:
    def _chain(self, n=20):
        nl = Netlist("chain")
        prev = nl.add_input("a")
        for k in range(n):
            prev = nl.add("not", f"g{k}", [prev], f"n{k}")
        nl.add("buf", "out", [prev], nl.add_output("y"))
        return nl

    def test_parallel_bitstreams_byte_identical_to_serial(self):
        nl = self._chain()
        serial = compile_sharded(nl, n_shards=3, seed=0, workers=1)
        parallel = compile_sharded(nl, n_shards=3, seed=0, workers=3)
        s_bits = [bytes(b) for b in serial.to_bitstreams()]
        p_bits = [bytes(b) for b in parallel.to_bitstreams()]
        assert s_bits == p_bits
        assert serial.stats == parallel.stats

    def test_auto_workers_byte_identical_to_serial(self):
        """The workers=None default (auto pool) changes nothing but
        wall-clock: same bitstreams as the workers=0 debug path."""
        nl = self._chain()
        auto = compile_sharded(nl, n_shards=3, seed=0)
        serial = compile_sharded(nl, n_shards=3, seed=0, workers=0)
        a_bits = [bytes(b) for b in auto.to_bitstreams()]
        s_bits = [bytes(b) for b in serial.to_bitstreams()]
        assert a_bits == s_bits
        assert auto.stats == serial.stats

    def test_sharded_replicas_compose_and_stay_deterministic(self):
        nl = self._chain()
        a = compile_sharded(nl, n_shards=3, seed=0, replicas=2, workers=3)
        b = compile_sharded(nl, n_shards=3, seed=0, replicas=2, workers=0)
        assert [bytes(x) for x in a.to_bitstreams()] == \
               [bytes(x) for x in b.to_bitstreams()]

    def test_parallel_result_verifies(self):
        nl = self._chain()
        res = compile_sharded(nl, n_shards=3, seed=0, workers=3)
        assert res.verify(n_vectors=64, event_vectors=2)["ok"]
