"""Integration tests: the macro library simulated on the fabric.

These are the reproduction's core structural checks — the paper's Fig. 9
(LUT + flip-flop), Fig. 10 (adder slice), Fig. 12 (ECSE) and the Section
4.1 C-element, each placed on a CellArray, compiled to the event simulator
and exercised functionally.
"""

import numpy as np
import pytest

from repro.fabric.array import CellArray
from repro.sim.values import ONE, ZERO
from repro.synth.macros import (
    c_element_pair,
    complement_cell,
    d_latch_pair,
    dff_pair,
    ecse_pair,
    feedthrough_cell,
    full_adder_slice,
    lut_pair,
    lut_pair_from_table,
    place,
)
from repro.synth.qm import minimise
from repro.synth.truthtable import TruthTable

SETTLE = 60  # generous settle window per input change (sim time units)


def run_macro(macro, drives, observe, pre_drives=(), array_shape=(2, 6)):
    """Place a macro at (0,0), apply drives sequentially, read outputs.

    ``drives`` is a list of dicts {port: value}; after each dict the sim
    settles.  ``pre_drives`` is an optional initialisation sequence whose
    observations are discarded (state elements power up at X and need an
    initialising event, exactly like real hardware).  Returns the list of
    {port: value} observations of ``observe`` after each drive step.
    """
    array = CellArray(*array_shape)
    placed = place(macro, array, 0, 0)
    sim = array.compile_into().sim
    out = []
    t = 0
    pre = list(pre_drives)
    for step in pre + list(drives):
        for port, v in step.items():
            sim.drive(placed.inputs[port], v, at=t)
        t += SETTLE
        sim.run(until=t)
        out.append({p: sim.value(placed.outputs[p]) for p in observe})
    return out[len(pre):]


class TestComplementCell:
    @pytest.mark.parametrize("bits", [(0, 0, 0), (1, 0, 1), (1, 1, 1), (0, 1, 0)])
    def test_all_polarities(self, bits):
        macro = complement_cell(3)
        drives = [{f"x{k}": b for k, b in enumerate(bits)}]
        obs = run_macro(macro, drives, [f"x{k}" for k in range(3)] + [f"x{k}_n" for k in range(3)])
        for k, b in enumerate(bits):
            assert obs[0][f"x{k}"] == b
            assert obs[0][f"x{k}_n"] == 1 - b

    def test_var_count_validated(self):
        with pytest.raises(ValueError):
            complement_cell(4)


class TestLUTPair:
    def drive_vars(self, bits):
        d = {}
        for k, b in enumerate(bits):
            d[f"x{k}"] = b
            d[f"x{k}_n"] = 1 - b
        return d

    @pytest.mark.parametrize("seed", range(8))
    def test_random_3var_functions(self, seed):
        t = TruthTable.random(3, np.random.default_rng(seed))
        macro = lut_pair_from_table(t)
        for idx in range(8):
            bits = [(idx >> k) & 1 for k in range(3)]
            obs = run_macro(macro, [self.drive_vars(bits)], ["f", "f_n"])
            assert obs[0]["f"] == int(t.outputs[idx]), (seed, bits)
            assert obs[0]["f_n"] == 1 - int(t.outputs[idx])

    def test_fig9_function_or_of_complements(self):
        # Fig. 9's example LUT: x' + y' + z' (the printed "x + y + z" lost
        # its overbars) = NAND(x, y, z); as SOP it is three single-literal
        # products.
        t = TruthTable.from_function(3, lambda x, y, z: (not x) or (not y) or (not z))
        cover = minimise(t)
        assert len(cover) == 3  # x' + y' + z'
        macro = lut_pair(cover, 3)
        obs = run_macro(macro, [self.drive_vars([1, 1, 1])], ["f"])
        assert obs[0]["f"] == ZERO
        obs = run_macro(macro, [self.drive_vars([1, 0, 1])], ["f"])
        assert obs[0]["f"] == ONE

    def test_constants(self):
        one = lut_pair(minimise(TruthTable.constant(3, 1)), 3)
        zero = lut_pair(minimise(TruthTable.constant(3, 0)), 3)
        obs1 = run_macro(one, [self.drive_vars([0, 1, 0])], ["f"])
        obs0 = run_macro(zero, [self.drive_vars([0, 1, 0])], ["f"])
        assert obs1[0]["f"] == ONE
        assert obs0[0]["f"] == ZERO

    def test_cover_size_limit(self):
        from repro.synth.qm import Implicant

        too_many = [Implicant(0b111, k) for k in range(7)]
        with pytest.raises(ValueError, match="6"):
            lut_pair(too_many, 3)

    def test_cell_pair_budget(self):
        # The paper's claim: a pair of cells is a small LUT.
        assert lut_pair_from_table(TruthTable.random(3, np.random.default_rng(1))).n_cells == 2


class TestDLatch:
    def test_transparent_and_hold(self):
        macro = d_latch_pair()
        obs = run_macro(
            macro,
            [
                {"d": 1, "g": 1, "g_n": 0},  # transparent: q = 1
                {"g": 0, "g_n": 1},          # close the latch
                {"d": 0},                    # d changes: q must hold
                {"g": 1, "g_n": 0},          # open: q follows d = 0
            ],
            ["q"],
        )
        assert [o["q"] for o in obs] == [ONE, ONE, ONE, ZERO]

    def test_pair_budget(self):
        assert d_latch_pair().n_cells == 2


class TestDFF:
    #: Initialising sequence: capture d=0 on one full clock cycle so q
    #: leaves its power-up X state (exactly as real hardware needs).
    INIT = (
        {"d": 0, "clk": 0, "clk_n": 1},
        {"d": 0, "clk": 1, "clk_n": 0},
        {"d": 0, "clk": 0, "clk_n": 1},
    )

    def clocked_sequence(self, macro, seq):
        """Apply (d, clk) pairs after initialisation; return q per step."""
        drives = [{"d": d, "clk": clk, "clk_n": 1 - clk} for d, clk in seq]
        return [
            o["q"]
            for o in run_macro(macro, drives, ["q"], pre_drives=self.INIT)
        ]

    def test_rising_edge_capture(self):
        macro = dff_pair()
        qs = self.clocked_sequence(
            macro,
            [(1, 0), (1, 1), (0, 1), (0, 0), (0, 1)],
        )
        # Load master with 1, rising edge -> q=1; d falls while high: hold;
        # clock low: hold; next rising edge captures 0.
        assert qs == [ZERO, ONE, ONE, ONE, ZERO]

    def test_data_change_between_edges_invisible(self):
        macro = dff_pair()
        qs = self.clocked_sequence(
            macro,
            [(1, 0), (0, 0), (1, 0), (1, 1)],
        )
        # d wiggles while clock low: q stays 0 until the edge.
        assert qs == [ZERO, ZERO, ZERO, ONE]

    def test_q_n_complements_q(self):
        macro = dff_pair()
        obs = run_macro(
            macro,
            [
                {"d": 1, "clk": 0, "clk_n": 1},
                {"clk": 1, "clk_n": 0},
            ],
            ["q", "q_n"],
            pre_drives=self.INIT,
        )
        assert obs[-1]["q"] == ONE and obs[-1]["q_n"] == ZERO

    def test_async_reset(self):
        # Reset is also the initialiser: no clocking needed to leave X.
        macro = dff_pair(with_reset=True)
        drives = [
            {"d": 1, "clk": 0, "clk_n": 1, "rst_n": 0},  # reset asserted
            {"rst_n": 1},                                # released, clk low
            {"clk": 1, "clk_n": 0},                      # rising edge: q <- 1
            {"rst_n": 0},                                # async clear, clk high
            {"rst_n": 1, "clk": 0, "clk_n": 1},
        ]
        obs = run_macro(macro, drives, ["q"])
        assert [o["q"] for o in obs] == [ZERO, ZERO, ONE, ZERO, ZERO]

    def test_two_cells_as_paper_claims(self):
        # Fig. 9: the flip-flop occupies two cells of the four-cell tile.
        assert dff_pair().n_cells == 2
        assert dff_pair(with_reset=True).n_cells == 2

    def test_five_shared_product_terms(self):
        # m/q equations share C.m: 5 products for the whole flip-flop.
        macro = dff_pair()
        a_cell = macro.cells[(0, 0)]
        n_products = sum(1 for r in range(6) if a_cell.row_kind(r) == "nand")
        assert n_products == 5


class TestCElement:
    def test_follows_and_holds(self):
        macro = c_element_pair()
        obs = run_macro(
            macro,
            [
                {"a": 0, "b": 0},  # agree low
                {"a": 1},          # disagree: hold 0
                {"b": 1},          # agree high: c -> 1
                {"a": 0},          # disagree: hold 1
                {"b": 0},          # agree low: c -> 0
            ],
            ["c"],
        )
        assert [o["c"] for o in obs] == [ZERO, ZERO, ONE, ONE, ZERO]

    def test_pair_budget(self):
        assert c_element_pair().n_cells == 2


class TestECSE:
    def test_two_phase_capture_pass(self):
        macro = ecse_pair()

        def phase(r, a, din):
            return {"req": r, "req_n": 1 - r, "ack": a, "ack_n": 1 - a, "din": din}

        obs = run_macro(
            macro,
            [
                phase(0, 0, 1),  # transparent (phases agree): z = 1
                phase(1, 0, 1),  # request event: capture, hold
                phase(1, 0, 0),  # din changes while opaque: hold 1
                phase(1, 1, 0),  # ack event: transparent again: z = 0
            ],
            ["z"],
        )
        assert [o["z"] for o in obs] == [ONE, ONE, ONE, ZERO]

    def test_pair_budget(self):
        assert ecse_pair().n_cells == 2


class TestFullAdder:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    @pytest.mark.parametrize("cin", [0, 1])
    def test_exhaustive(self, a, b, cin):
        macro = full_adder_slice()
        drives = [{
            "a": a, "a_n": 1 - a,
            "b": b, "b_n": 1 - b,
            "cin": cin, "cin_n": 1 - cin,
        }]
        obs = run_macro(macro, drives, ["s", "cout", "cout_n"], array_shape=(2, 4))
        total = a + b + cin
        assert obs[0]["s"] == total % 2, (a, b, cin)
        assert obs[0]["cout"] == total // 2, (a, b, cin)
        assert obs[0]["cout_n"] == 1 - total // 2, (a, b, cin)

    def test_five_product_terms_in_plane(self):
        # The paper's Fig. 10 claim: the adder needs just five terms.
        macro = full_adder_slice()
        a_cell = macro.cells[(0, 0)]
        n_products = sum(1 for r in range(6) if a_cell.row_kind(r) == "nand")
        assert n_products == 5

    def test_ripple_polarity_pair(self):
        # The carry leaves on two lines (cout, cout') matching the next
        # bit's (cin, cin') columns — the paper's "two horizontal
        # connections".
        macro = full_adder_slice()
        assert macro.outputs["cout"][2] == 4 == macro.inputs["cin"][2]
        assert macro.outputs["cout_n"][2] == 5 == macro.inputs["cin_n"][2]


class TestFeedthrough:
    def test_identity_routing(self):
        macro = feedthrough_cell({0: 0, 3: 3})
        obs = run_macro(macro, [{"in0": 1, "in3": 0}], ["out0", "out3"])
        assert obs[0]["out0"] == ONE and obs[0]["out3"] == ZERO

    def test_line_remap(self):
        macro = feedthrough_cell({2: 5})
        obs = run_macro(macro, [{"in2": 1}], ["out5"])
        assert obs[0]["out5"] == ONE
