"""Resilience: fault injection, deadlines, retries, crash isolation.

Pins the PR-10 hardening contract (see ``docs/resilience.md``):

* the fault-injection layer itself — content-addressed deterministic
  :class:`FaultPlan`, token scoping, the transient/deterministic
  taxonomy, seeded retry backoff;
* per-job deadlines: a stuck compile raises ``CompileTimeout`` within
  2x the deadline instead of hanging the pool (the acceptance pin);
* shutdown semantics: futures settle, never hang; submit-after-close
  raises;
* crash-isolated workers: a worker death is survived by resubmitting
  exactly once, byte-identically; a double death surfaces as
  ``WorkerLost`` — and coalesced waiters settle either way;
* graceful degradation: bounded admission sheds with
  ``ServiceOverloaded``; an exhausted die repair serves the golden
  artifact marked ``degraded=True``, never cached;
* store durability: publishes interrupted at every fault point leave
  the old state or the complete new blob; corruption quarantines into
  a miss; transient IO retries then degrades to a miss.

The random-plan closure of the same properties lives in
``tests/test_resilience_chaos.py``.
"""

import os
import threading
import time

import pytest

from repro.datapath.adder import ripple_carry_netlist
from repro.pnr import compile_to_fabric, sample_defect_map
from repro.pnr.parallel import (
    CompileTimeout,
    ProcessWorkerPool,
    TaskPool,
    TransientFault,
    WorkerCrash,
    WorkerLost,
    checkpoint,
    current_deadline,
    deadline_scope,
    fault_point,
)
from repro.service import CompileOptions, CompileService
from repro.service.resilience import (
    FAULT_EXCEPTIONS,
    DeterministicFault,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ServiceOverloaded,
    StoreIOFault,
    is_transient,
)
from repro.service.store import ArtifactStore


def reference_bitstreams(netlist, options=None):
    kwargs = (options or CompileOptions()).compile_kwargs()
    result = compile_to_fabric(netlist, **kwargs)
    return [result.to_bitstream().tobytes()]


# ---------------------------------------------------------------------------
# Deadlines and cooperative cancellation
# ---------------------------------------------------------------------------
def test_checkpoint_is_noop_without_deadline_and_raises_past_one():
    checkpoint()  # no scope installed: must not raise
    assert current_deadline() is None
    with deadline_scope(0.005):
        assert current_deadline() is not None
        checkpoint()  # not expired yet
        time.sleep(0.02)
        with pytest.raises(CompileTimeout):
            checkpoint()
    assert current_deadline() is None
    checkpoint()  # scope restored cleanly after the timeout


def test_nested_deadline_scopes_keep_the_tighter_one():
    with deadline_scope(60.0):
        outer = current_deadline()
        with deadline_scope(0.001):
            assert current_deadline().expires_at < outer.expires_at
            time.sleep(0.005)
            with pytest.raises(CompileTimeout):
                checkpoint()
        assert current_deadline() is outer
        checkpoint()
    # None inside a scope means "no tightening", not "no deadline".
    with deadline_scope(0.001):
        with deadline_scope(None):
            assert current_deadline() is not None


def test_real_compile_times_out_within_2x_deadline():
    """The acceptance pin: CompileTimeout, not a hang, within 2x."""
    deadline = 0.05  # well under rca8's cold compile time
    with CompileService(workers=0) as svc:
        t0 = time.perf_counter()
        with pytest.raises(CompileTimeout):
            svc.compile(
                ripple_carry_netlist(8), CompileOptions(deadline=deadline)
            )
        elapsed = time.perf_counter() - t0
    assert elapsed < 2 * deadline, (
        f"timed out after {elapsed:.3f}s against a {deadline}s deadline"
    )


def test_stalled_job_still_times_out_within_2x_deadline():
    """An injected 2s stall cannot outlive a 0.2s deadline."""
    deadline = 0.2
    plan = FaultPlan.from_specs([("service.run", "stall", {"delay": 2.0})])
    with CompileService(workers=0) as svc, plan.activate():
        t0 = time.perf_counter()
        with pytest.raises(CompileTimeout):
            svc.compile(
                ripple_carry_netlist(2), CompileOptions(deadline=deadline)
            )
        elapsed = time.perf_counter() - t0
    assert elapsed < 2 * deadline
    stats = svc.stats()
    assert stats["timeouts"] == 1
    assert stats["submissions"] == stats["settled"] == 1


def test_timeout_books_and_identity_hold():
    with CompileService(workers=0) as svc:
        with pytest.raises(CompileTimeout):
            svc.compile(ripple_carry_netlist(8), CompileOptions(deadline=0.05))
        ok = svc.compile(ripple_carry_netlist(2))
        assert not ok.degraded
        stats = svc.stats()
    assert stats["timeouts"] == 1
    assert stats["submissions"] == 2
    assert stats["settled"] == 2
    assert stats["shed"] == 0 and stats["pending"] == 0


# ---------------------------------------------------------------------------
# FaultPlan: content addressing, determinism, token scoping
# ---------------------------------------------------------------------------
def test_fault_plan_digest_is_content_addressed():
    a = FaultPlan((FaultSpec("pool.worker", "die", token="0"),), seed=3)
    b = FaultPlan.from_specs([("pool.worker", "die", {"token": "0"})], seed=3)
    assert a.digest() == b.digest()
    assert a.digest() != FaultPlan((), seed=3).digest()
    assert a.digest() != FaultPlan(a.specs, seed=4).digest()


def test_fault_spec_validation():
    with pytest.raises(ValueError, match="unknown fault point"):
        FaultSpec("nonsense.point", "error")
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("service.run", "explode")
    with pytest.raises(ValueError, match="unknown fault exception"):
        FaultSpec("service.run", "error", exc="nonsense")
    with pytest.raises(ValueError, match="rate"):
        FaultSpec("service.run", "error", rate=1.5)
    with pytest.raises(ValueError, match="delay"):
        FaultSpec("service.run", "stall", delay=-1.0)


def test_fault_point_rejects_unregistered_names_under_a_plan():
    plan = FaultPlan(())
    with plan.activate():
        with pytest.raises(ValueError, match="unregistered fault point"):
            fault_point("not.a.point")
    # ...but with no plan active the call is a no-op passthrough even
    # for nonsense (the zero-overhead path does not validate).
    assert fault_point("service.run", data=b"x") == b"x"


def test_rate_gating_is_deterministic_and_seed_dependent():
    plan = FaultPlan.from_specs(
        [("service.run", "error", {"rate": 0.5})], seed=1
    )

    def fire_pattern(p):
        out = []
        with p.activate():
            for t in range(24):
                try:
                    fault_point("service.run", token=str(t))
                    out.append(False)
                except TransientFault:
                    out.append(True)
        return out

    first = fire_pattern(plan)
    assert first == fire_pattern(plan), "same plan must replay identically"
    assert 4 < sum(first) < 20, "a 0.5 rate should fire roughly half"
    other = fire_pattern(
        FaultPlan.from_specs([("service.run", "error", {"rate": 0.5})], seed=2)
    )
    assert first != other, "the seed must change the draw"


def test_token_scoping_targets_specific_visits():
    plan = FaultPlan.from_specs(
        [("pool.worker", "error", {"token": "job-7"})]
    )
    with plan.activate():
        fault_point("pool.worker", token="job-6")  # no match, no fire
        with pytest.raises(TransientFault):
            fault_point("pool.worker", token="job-7")


def test_corrupt_fault_flips_exactly_one_byte_deterministically():
    plan = FaultPlan.from_specs([("store.load", "corrupt",)], seed=9)
    data = bytes(range(64))
    with plan.activate():
        a = fault_point("store.load", token="k", data=data)
        b = fault_point("store.load", token="k", data=data)
    assert a == b != data
    assert sum(x != y for x, y in zip(a, data)) == 1


def test_exception_registry_covers_the_taxonomy():
    for name, cls in FAULT_EXCEPTIONS.items():
        plan = FaultPlan.from_specs(
            [("service.run", "error", {"exc": name})]
        )
        with plan.activate():
            with pytest.raises(cls):
                fault_point("service.run")


# ---------------------------------------------------------------------------
# The taxonomy and the retry policy
# ---------------------------------------------------------------------------
def test_is_transient_taxonomy():
    assert is_transient(TransientFault("x"))
    assert is_transient(WorkerCrash("x"))
    assert is_transient(WorkerLost("x"))
    assert is_transient(OSError("disk"))
    assert is_transient(StoreIOFault("disk"))
    # CompileTimeout IS an OSError (via TimeoutError) — the carve-out
    # that keeps deadline expiries out of the retry loop.
    assert isinstance(CompileTimeout("t"), OSError)
    assert not is_transient(CompileTimeout("t"))
    assert not is_transient(DeterministicFault("x"))
    assert not is_transient(ValueError("x"))


def test_retry_policy_retries_transient_only_within_budget():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise StoreIOFault("blip")
        return "ok"

    policy = RetryPolicy(max_attempts=3, base_delay=0.001, seed=5)
    retries = []
    assert policy.call(flaky, on_retry=lambda: retries.append(1)) == "ok"
    assert len(calls) == 3 and len(retries) == 2

    # Budget exhausted: the transient fault propagates.
    calls.clear()
    with pytest.raises(StoreIOFault):
        RetryPolicy(max_attempts=2, base_delay=0.001).call(
            lambda: (_ for _ in ()).throw(StoreIOFault("always"))
        )

    # Deterministic failures never retry.
    calls.clear()

    def det():
        calls.append(1)
        raise DeterministicFault("no")

    with pytest.raises(DeterministicFault):
        policy.call(det)
    assert len(calls) == 1

    def timed_out():
        calls.append(1)
        raise CompileTimeout("budget spent")

    calls.clear()
    with pytest.raises(CompileTimeout):
        policy.call(timed_out)
    assert len(calls) == 1


def test_retry_backoff_is_seeded_and_deterministic():
    p = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
    assert [round(p.delay(a), 3) for a in range(3)] == [0.1, 0.2, 0.4]
    q = RetryPolicy(seed=1)
    assert q.delay(1, "tok") == q.delay(1, "tok")
    assert q.delay(1, "tok") != q.delay(1, "other")
    assert RetryPolicy(seed=2).delay(1, "tok") != q.delay(1, "tok")
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


# ---------------------------------------------------------------------------
# Shutdown semantics (satellite): settle, never hang
# ---------------------------------------------------------------------------
def test_taskpool_submit_after_close_raises_and_close_is_idempotent():
    pool = TaskPool(workers=0)
    assert pool.submit(lambda: 5).result() == 5
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        pool.submit(lambda: 5)


def test_taskpool_close_settles_every_pending_future():
    started = threading.Event()
    with TaskPool(workers=2) as pool:
        def slow(i):
            started.wait(1.0)
            return i
        futures = [pool.submit(slow, i) for i in range(6)]
        started.set()
        pool.close()
        # close() drained: every future is already settled.
        assert all(f.done() for f in futures)
        assert sorted(f.result(timeout=0) for f in futures) == list(range(6))


def test_service_close_settles_inflight_and_refuses_new_jobs():
    svc = CompileService(workers=2)
    futures = [svc.submit(ripple_carry_netlist(n)) for n in (2, 3)]
    svc.close()
    assert all(f.done() for f in futures)
    for f in futures:
        assert f.result(timeout=0).bitstreams()  # settled with a result
    with pytest.raises(RuntimeError, match="closed"):
        svc.submit(ripple_carry_netlist(2))
    with pytest.raises(RuntimeError, match="closed"):
        svc.submit_for_die(
            ripple_carry_netlist(2), sample_defect_map(13, 13, seed=0)
        )
    with pytest.raises(RuntimeError, match="closed"):
        svc.recompile(ripple_carry_netlist(2), futures[0].result())
    stats = svc.stats()
    assert stats["submissions"] == stats["settled"] + stats["shed"]
    svc.close()  # idempotent


# ---------------------------------------------------------------------------
# Crash-isolated workers: resubmit exactly once, byte-identically
# ---------------------------------------------------------------------------
def _exit_hard(code):
    os._exit(code)


def _double(x):
    return 2 * x


def test_process_pool_survives_a_crash_and_respawns():
    with ProcessWorkerPool(workers=1) as pool:
        assert pool.run(_double, 21) == 42
        with pytest.raises(WorkerCrash):
            pool.run(_exit_hard, 3)
        assert pool.restarts == 1
        assert pool.run(_double, 4) == 8  # respawned and healthy


def test_worker_death_resubmits_exactly_once_byte_identically():
    nl = ripple_carry_netlist(3)
    reference = reference_bitstreams(ripple_carry_netlist(3))
    # Kill the first pool job (submission sequence 0); the supervisor's
    # resubmission runs as sequence 1 and must succeed.
    plan = FaultPlan.from_specs([("pool.worker", "die", {"token": "0"})])
    with CompileService(workers=2) as svc, plan.activate():
        result = svc.submit(nl).result(timeout=30)
    assert result.bitstreams() == reference
    stats = svc.stats()
    assert stats["worker_restarts"] == 1
    assert stats["compiles"] == 1
    assert stats["submissions"] == stats["settled"] == 1


def test_double_worker_death_settles_waiters_with_worker_lost():
    nl = ripple_carry_netlist(2)
    # A stall before each death keeps the job in flight long enough for
    # the second submission to coalesce deterministically.
    plan = FaultPlan.from_specs([
        ("pool.worker", "stall", {"delay": 0.3}),
        ("pool.worker", "die"),
    ])
    with CompileService(workers=2) as svc, plan.activate():
        first = svc.submit(nl)
        second = svc.submit(nl)  # coalesces onto the same in-flight job
        with pytest.raises(WorkerLost):
            first.result(timeout=30)
        with pytest.raises(WorkerLost):
            second.result(timeout=30)
    stats = svc.stats()
    assert stats["worker_restarts"] == 1, "exactly one resubmission"
    assert stats["coalesced"] == 1
    assert stats["submissions"] == stats["settled"] == 2
    assert stats["pending"] == 0


def test_process_isolation_survives_real_worker_death():
    nl = ripple_carry_netlist(2)
    reference = reference_bitstreams(ripple_carry_netlist(2))
    with CompileService(workers=0, isolation="process") as svc:
        key_hash = svc.job_key(nl, CompileOptions())[0][:12]
        # Kill attempt 0 of this job *inside* the subprocess: the
        # injected WorkerCrash becomes os._exit(3), the parent sees the
        # broken pool, respawns, and resubmits as attempt 1.
        plan = FaultPlan.from_specs(
            [("pool.worker", "die", {"token": f"proc:{key_hash}:0"})]
        )
        with plan.activate():
            result = svc.compile(nl)
        assert result.bitstreams() == reference
        stats = svc.stats()
    assert stats["worker_restarts"] == 1
    assert stats["process_restarts"] == 1
    assert stats["submissions"] == stats["settled"]


def test_isolation_mode_validation():
    with pytest.raises(ValueError, match="isolation"):
        CompileService(workers=0, isolation="container")
    with pytest.raises(ValueError, match="max_pending"):
        CompileService(workers=0, max_pending=0)


# ---------------------------------------------------------------------------
# Graceful degradation: load shedding and golden stand-ins
# ---------------------------------------------------------------------------
def test_bounded_admission_sheds_with_depth_and_retry_after():
    # Two workers stall on injected 0.6s faults; the queue bound is 2,
    # so the third concurrent submission must shed synchronously.
    plan = FaultPlan.from_specs([("service.run", "stall", {"delay": 0.6})])
    netlists = [ripple_carry_netlist(n) for n in (2, 3, 4)]
    with CompileService(workers=2, max_pending=2) as svc, plan.activate():
        admitted = [svc.submit(nl) for nl in netlists[:2]]
        with pytest.raises(ServiceOverloaded) as exc:
            svc.submit(netlists[2])
        assert exc.value.queue_depth >= 2
        assert exc.value.max_pending == 2
        assert exc.value.retry_after > 0
        for f in admitted:
            assert f.result(timeout=30).bitstreams()
    stats = svc.stats()
    assert stats["shed"] == 1
    assert stats["submissions"] == stats["settled"] + stats["shed"]
    assert stats["pending"] == 0


def test_cache_hits_are_never_shed():
    nl = ripple_carry_netlist(2)
    with CompileService(workers=0, max_pending=1) as svc:
        svc.compile(nl)
        # Saturate the gauge artificially impossible here (serial), so
        # prove the ordering instead: a hit resolves without consulting
        # admission even when max_pending is the tightest possible.
        hit = svc.compile(nl)
        assert hit.cached
    assert svc.stats()["shed"] == 0


def test_exhausted_die_repair_degrades_to_marked_golden():
    nl = ripple_carry_netlist(2)
    die = sample_defect_map(13, 13, cell_fail=0.01, wire_fail=0.004, seed=9)
    with CompileService(workers=0) as svc:
        golden = svc.compile(nl)
        # A deadline the repair cannot possibly meet: the wave-0
        # checkpoint fires immediately, and the service serves the
        # golden artifact as an explicit stand-in.
        degraded = svc.compile_for_die(nl, die, CompileOptions(deadline=1e-6))
        assert degraded.degraded and not degraded.repaired
        assert degraded.bitstreams() == golden.bitstreams()
        # Never cached: the die gets its real repair when asked again
        # without pressure.
        assert svc.cache.peek(svc.die_key(nl, CompileOptions(), die)) is None
        real = svc.compile_for_die(nl, die)
        assert real.repaired and not real.degraded
        assert real.bitstreams() != golden.bitstreams()
        stats = svc.stats()
    assert stats["degraded"] == 1
    assert stats["timeouts"] == 1
    assert stats["submissions"] == stats["settled"] + stats["shed"]


def test_degradation_can_be_disabled():
    nl = ripple_carry_netlist(2)
    die = sample_defect_map(13, 13, cell_fail=0.01, wire_fail=0.004, seed=9)
    with CompileService(workers=0, degrade_under_pressure=False) as svc:
        svc.compile(nl)
        with pytest.raises(CompileTimeout):
            svc.compile_for_die(nl, die, CompileOptions(deadline=1e-6))
    assert svc.stats()["degraded"] == 0


def test_repair_fallback_under_pressure_serves_degraded_golden():
    nl = ripple_carry_netlist(2)
    die = sample_defect_map(13, 13, cell_fail=0.01, wire_fail=0.004, seed=9)
    other = ripple_carry_netlist(3)
    # Wave 0 stalls (long enough to pile load behind it), then the
    # repair declines; the queue is full, so the golden stand-in wins
    # over a cold defect-aware compile.
    plan = FaultPlan.from_specs([
        ("repair.wave", "stall", {"delay": 0.5, "token": ":0"}),
        ("repair.wave", "error", {"exc": "repair", "token": ":0"}),
        ("service.run", "stall", {"delay": 0.8, "token": other_hash()}),
    ])
    with CompileService(workers=2, max_pending=2) as svc:
        golden = svc.compile(nl)
        with plan.activate():
            die_future = svc.submit_for_die(nl, die)
            svc.submit(other).result(timeout=30)  # the pressure
            result = die_future.result(timeout=30)
    assert result.degraded and not result.repaired
    assert result.bitstreams() == golden.bitstreams()
    stats = svc.stats()
    assert stats["degraded"] == 1
    assert stats["repair_fallbacks"] == 1
    assert stats["submissions"] == stats["settled"] + stats["shed"]


def other_hash():
    from repro.netlist.canonical import canonical_hash

    return canonical_hash(ripple_carry_netlist(3))[:12]


# ---------------------------------------------------------------------------
# Store durability (satellite): interrupted publishes, retried loads
# ---------------------------------------------------------------------------
PUBLISH_POINTS = ("store.publish", "store.publish.stage",
                  "store.publish.commit")


@pytest.mark.parametrize("point", PUBLISH_POINTS)
def test_publish_interrupted_at_every_point_is_old_state_or_complete(
    tmp_path, point
):
    key = ("design", ("opts", 1))
    store = ArtifactStore(tmp_path)
    store.put(key, {"v": "old"})
    plan = FaultPlan.from_specs([(point, "error", {"exc": "io"})])
    with plan.activate():
        with pytest.raises(StoreIOFault):
            store.put(key, {"v": "new"})
    # No staging litter survives an interruption.
    assert not list(tmp_path.glob("objects/stage-*.tmp"))
    # A fresh store (a restarted process) sees old state before the
    # rename, the complete new blob after it — never a torn write.
    seen = ArtifactStore(tmp_path).get(key)
    if point == "store.publish.commit":
        assert seen == {"v": "new"}
    else:
        assert seen == {"v": "old"}


def test_publish_corruption_is_quarantined_into_a_miss(tmp_path):
    key = ("design", ("opts", 2))
    store = ArtifactStore(tmp_path)
    plan = FaultPlan.from_specs([("store.publish", "corrupt",)])
    with plan.activate():
        store.put(key, {"v": "poisoned"})
    fresh = ArtifactStore(tmp_path)
    assert fresh.get(key) is None
    assert fresh.quarantined == 1
    s = fresh.stats()
    assert s["lookups"] == s["hits"] + s["misses"]


def test_publish_fsyncs_the_containing_directory(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.dir_syncs == 0
    store.put(("k",), "v")
    assert store.dir_syncs == 1
    assert store.stats()["dir_syncs"] == 1


def test_load_corruption_degrades_to_recompile_with_identical_bytes(
    tmp_path,
):
    nl = ripple_carry_netlist(2)
    with CompileService(workers=0, store=tmp_path) as first:
        reference = first.compile(nl).bitstreams()
    plan = FaultPlan.from_specs([("store.load", "corrupt",)])
    with CompileService(workers=0, store=tmp_path) as second, plan.activate():
        result = second.compile(nl)
    assert result.bitstreams() == reference
    stats = second.stats()
    assert stats["compiles"] == 1, "corrupt store blob costs one recompile"
    assert stats["store"]["quarantined"] == 1
    assert stats["store_errors"] == 0, "corruption is a miss, not an error"


def test_transient_store_io_retries_then_degrades_to_miss(tmp_path):
    nl = ripple_carry_netlist(2)
    with CompileService(workers=0, store=tmp_path) as first:
        reference = first.compile(nl).bitstreams()
    plan = FaultPlan.from_specs([("store.load", "error", {"exc": "io"})])
    retry = RetryPolicy(max_attempts=3, base_delay=0.001)
    with CompileService(
        workers=0, store=tmp_path, retry=retry
    ) as second, plan.activate():
        result = second.compile(nl)
    assert result.bitstreams() == reference
    stats = second.stats()
    assert stats["retries"] == 2, "two backoffs before degrading"
    assert stats["store_errors"] == 1
    assert stats["compiles"] == 1
    assert stats["submissions"] == stats["settled"]


# ---------------------------------------------------------------------------
# Sessions under pressure
# ---------------------------------------------------------------------------
def _bump_one_delay(nl):
    """+1 delay on the first and-gate — a tiny pure-timing edit."""
    from repro.netlist.ir import Netlist

    target = next(c.name for c in nl.cells if c.kind == "and")
    out = Netlist(nl.name)
    for p in nl.inputs:
        out.add_input(p)
    for p in nl.outputs:
        out.add_output(p)
    for c in nl.cells:
        delay = c.delay + 1 if c.name == target else c.delay
        out.add(c.kind, c.name, list(c.inputs), c.output,
                delay=delay, **dict(c.params))
    return out


def test_session_records_declined_edits_and_stays_reappliable():
    base = ripple_carry_netlist(2)
    edit = _bump_one_delay(base)
    with CompileService(workers=0) as svc:
        session = svc.open_session(base)
        session.options = CompileOptions(deadline=1e-6)
        with pytest.raises(CompileTimeout):
            session.apply(edit)
        assert session.stats()["errors"] == 1
        assert session.stats()["steps"] == 0
        assert session.current is session.base, "chain stayed put"
        session.options = CompileOptions()
        applied = session.apply(edit)  # re-appliable when calmer
        assert applied.bitstreams()
        stats = session.stats()
    assert stats["steps"] == 1
    assert stats["errors"] == 1
    assert stats["fallbacks"] == 0
