"""The Fig. 10 datapath: an 8-bit accumulator summing a data stream.

Every bit is the paper's five-term full-adder slice with the ripple carry
crossing between cells on two abutted lines; an edge-triggered flip-flop
pair per bit stores the running total.

Run:  python examples/accumulator_datapath.py
"""

from repro.datapath.accumulator import Accumulator
from repro.datapath.adder import RippleCarryAdder
from repro.datapath.bitserial import bit_serial_timing, crossover_width, ripple_timing
from repro.util.technology import node, nodes_descending


def main() -> None:
    print("== 8-bit fabric accumulator ==")
    acc = Accumulator(8)
    acc.reset()
    stream = [17, 42, 99, 3, 64, 21]
    total = 0
    for value in stream:
        total = (total + value) % 256
        got = acc.accumulate(value)
        marker = "ok" if got == total else "MISMATCH"
        print(f"  +{value:3d} -> ACC = {got:3d} (expect {total:3d}) {marker}")

    print(f"\n  cells per accumulated bit: {acc.cells_per_bit():.0f} "
          f"(adder slice 3 + register pair 2)")
    print(f"  adder product terms per bit: {RippleCarryAdder.TERMS_PER_BIT} "
          "(the paper's five shared terms)")

    print("\n== serial vs parallel (Section 4 aside) ==")
    n = node("65nm")
    for bits in (8, 16, 32, 64):
        rip = ripple_timing(bits, n).total_ps
        ser = bit_serial_timing(bits, n).total_ps
        winner = "serial" if ser < rip else "ripple"
        print(f"  {bits:3d} bits @65nm: ripple {rip:8.0f} ps, "
              f"serial {ser:8.0f} ps -> {winner}")
    print("\n  crossover width by node (serial wins above):")
    for tech in nodes_descending():
        print(f"    {tech.name:>6}: {crossover_width(tech)} bits")


if __name__ == "__main__":
    main()
