"""Quickstart: configure one polymorphic cell, simulate it, serialise it.

Demonstrates the three faces of the leaf cell the paper's title promises —
logic, interconnect, and (via the SR-latch feedback) state — in under a
hundred lines, then round-trips the whole configuration through the
128-bit-per-cell bitstream.

Run:  python examples/quickstart.py
"""

from repro.core.platform import PolymorphicPlatform
from repro.fabric.array import wire_name
from repro.fabric.driver import DriverMode
from repro.fabric.nandcell import CellConfig, InputSource
from repro.sim.values import format_value


def main() -> None:
    # ------------------------------------------------------------------
    # A cell as LOGIC: row 0 computes NAND(i0, i1); the INVERT driver
    # turns a second copy into AND.  A cell as INTERCONNECT: row 2 passes
    # input line 2 straight through.  A cell as STATE: rows 3/4 form an
    # SR latch through the two local-feedback lines.
    # ------------------------------------------------------------------
    cfg = CellConfig()
    cfg.set_product(0, [0, 1])               # NAND(i0, i1)
    cfg.drivers[0] = DriverMode.BUFFER
    cfg.set_product(1, [0, 1])               # AND(i0, i1) via INVERT
    cfg.drivers[1] = DriverMode.INVERT
    cfg.set_product(2, [2])                  # feed-through of i2
    cfg.drivers[2] = DriverMode.INVERT
    cfg.set_product(3, [0, 5])               # q  = NAND(s_n, qb)
    cfg.set_product(4, [1, 4])               # qb = NAND(r_n, q)
    cfg.lfb_taps[0] = 3                      # lfb0 = q
    cfg.lfb_taps[1] = 4                      # lfb1 = qb
    cfg.input_select[4] = InputSource.LFB0   # column 4 reads q
    cfg.input_select[5] = InputSource.LFB1   # column 5 reads qb
    cfg.drivers[3] = DriverMode.BUFFER

    platform = PolymorphicPlatform(1, 1)
    platform.array.set_cell(0, 0, cfg)

    i0, i1, i2 = (wire_name(0, 0, k) for k in range(3))
    nand_out, and_out, feed_out, q_out = (wire_name(0, 1, k) for k in range(4))

    print("== logic and interconnect ==")
    for a, b, c in [(0, 0, 1), (1, 1, 0)]:
        platform.drive_bit(i0, a)
        platform.drive_bit(i1, b)
        platform.drive_bit(i2, c)
        platform.settle()
        print(
            f"  i0={a} i1={b} i2={c} ->"
            f" NAND={format_value(platform.value(nand_out))}"
            f" AND={format_value(platform.value(and_out))}"
            f" feedthrough={format_value(platform.value(feed_out))}"
        )

    print("== state (SR latch on the same cell's lfb lines) ==")
    # Note: i0 doubles as s_n and i1 as r_n for rows 3/4.
    platform.drive_bit(i0, 0)   # set
    platform.drive_bit(i1, 1)
    platform.settle()
    print(f"  set:   q={format_value(platform.value(q_out))}")
    platform.drive_bit(i0, 1)   # hold
    platform.settle()
    print(f"  hold:  q={format_value(platform.value(q_out))}")
    platform.drive_bit(i1, 0)   # reset
    platform.settle()
    print(f"  reset: q={format_value(platform.value(q_out))}")

    print("== configuration accounting ==")
    stats = platform.stats()
    print(f"  cells used:        {stats.n_cells_used}")
    print(f"  leaf devices:      {stats.n_leaf_devices}")
    print(f"  config bits:       {stats.config_bits} (128 per cell, paper Section 4)")

    bits = platform.array.to_bitstream()
    print(f"  bitstream length:  {len(bits)} bits (header + frame + CRC)")
    from repro.fabric.array import CellArray

    clone = CellArray.from_bitstream(bits)
    print(f"  round trip intact: {clone.configs[0][0] == cfg}")


if __name__ == "__main__":
    main()
