"""Artifacts that outlive the service: the persisted store + sessions.

PR 9 gave the compile service a second cache tier
(`repro.service.ArtifactStore`): a content-addressed, on-disk store
under the same canonical keys as the in-memory cache.  Artifacts
published there survive the service object — a restarted process, or a
sibling process sharing the directory, serves them **byte-identically
with zero recompiles**.  On top of it, `service.open_session(base)`
chains a whole sequence of edits, each warm-starting from the previous
step's artifact, with every intermediate persisted.

This session walks the life cycle:

1. a first service compiles rca8 (and repairs it for one defective
   die) into a store directory, then is closed and dropped;
2. a **fresh** service on the same directory serves both artifacts
   from disk — byte-identical, ``compiles == 0``;
3. a 5-edit incremental session runs against the served base; every
   step is a delta compile (or a recorded fallback), every
   intermediate is persisted;
4. a blob is deliberately corrupted: the store quarantines it and the
   service recompiles — a bad disk costs a recompile, never a crash;
5. the books balance, on the service and on the store.

Run:  python examples/persistent_service.py
"""

import tempfile

from repro.datapath.adder import ripple_carry_netlist
from repro.netlist import Netlist
from repro.pnr import sample_defect_map
from repro.service import ArtifactStore, CompileOptions, CompileService


def one_gate_edit(nl: Netlist, k: int) -> Netlist:
    """Flip the first ``k`` AND gates to OR — a cumulative k-cell edit."""
    flips = {c.name for c in nl.cells if c.kind == "and"}
    flips = set(sorted(flips)[:k])
    out = Netlist(nl.name)
    for p in nl.inputs:
        out.add_input(p)
    for p in nl.outputs:
        out.add_output(p)
    for c in nl.cells:
        kind = "or" if c.name in flips else c.kind
        out.add(kind, c.name, list(c.inputs), c.output,
                delay=c.delay, **dict(c.params))
    return out


def main() -> None:
    print("== persisted artifact store ==")
    root = tempfile.mkdtemp(prefix="repro-store-")
    die = sample_defect_map(31, 31, cell_fail=0.0015, wire_fail=0.0006,
                            stuck_fail=0.0006, seed=3)

    # 1. a first life: compile into the store, then die.
    with CompileService(workers=0, store=root) as first:
        golden = first.compile(ripple_carry_netlist(8))
        repaired = first.compile_for_die(ripple_carry_netlist(8), die)
        bits, die_bits = golden.bitstreams(), repaired.bitstreams()
        n_compiles = first.stats()["compiles"]
    print(f"  first life:       {n_compiles} compile + 1 repair "
          f"-> {first.stats()['store']['insertions']} artifacts on disk")
    del first  # the service object is gone; only the directory remains

    # 2. a second life: same directory, fresh process state.
    with CompileService(workers=0, store=root) as svc:
        served = svc.compile(ripple_carry_netlist(8))
        served_die = svc.compile_for_die(ripple_carry_netlist(8), die)
        assert served.bitstreams() == bits
        assert served_die.bitstreams() == die_bits
        assert served.from_store and served_die.from_store
        assert svc.stats()["compiles"] == 0
        print(f"  second life:      rca8 + repaired die served from disk, "
              f"byte-identical, {svc.stats()['compiles']} recompiles")

        # 3. a 5-edit session against the served base.
        session = svc.open_session(ripple_carry_netlist(8))
        for k in range(1, 6):
            session.apply(one_gate_edit(ripple_carry_netlist(8), k))
        s = session.stats()
        print(f"  5-edit session:   {s['incremental']} delta compiles, "
              f"{s['fallbacks']} fallbacks, {s['cached']} cached "
              f"({s['seconds']:.2f}s total), every step persisted")
        assert s["steps"] == 5
        assert s["incremental"] + s["fallbacks"] + s["cached"] == 5

    # 4. corruption degrades to a miss + recompile, never a crash.
    store = ArtifactStore(root)
    with CompileService(workers=0, store=store) as svc:
        key = svc.job_key(ripple_carry_netlist(8), CompileOptions())
        path = store.path_of(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # truncate the blob
        recompiled = svc.compile(ripple_carry_netlist(8))
        assert recompiled.bitstreams() == bits  # determinism: same bytes
        assert not recompiled.from_store
        st = store.stats()
        print(f"  corrupted blob:   quarantined ({st['quarantined']}), "
              f"clean miss, recompiled to identical bytes")

        # 5. the books balance on both ledgers.
        st = store.stats()
        assert st["lookups"] == st["hits"] + st["misses"]
        print(f"  accounting:       store {st['entries']} entries / "
              f"{st['bytes'] / 1e6:.1f} MB, {st['hits']} hits + "
              f"{st['misses']} misses = {st['lookups']} lookups")
    print("  persisted store:  artifacts outlive the service, "
          "books balanced")


if __name__ == "__main__":
    main()
