"""Chaos drill: the compile service surviving injected disasters.

PR 10 hardened `repro.service` against the failures a long-running
compile farm actually meets — and shipped the fault-injection harness
(`repro.service.FaultPlan`) that proves it.  A plan is deterministic
and content-addressed: the same seed replays the same disasters, so a
recovery is a regression test, not an anecdote.

This drill runs three injected failures against rca8 and shows the
service recovering from each with the books balanced:

1. **worker kill** — the first pool worker dies mid-job; the
   supervisor respawns it and resubmits exactly once, and the
   recovered artifact is byte-identical to the fault-free compile;
2. **store corruption** — a persisted blob is corrupted in flight;
   the store quarantines it, reports a clean miss, and the service
   recompiles to identical bytes — never serves wrong ones;
3. **deadline expiry** — an impossible per-job deadline turns a
   would-be hang into `CompileTimeout`, on time and on the books.

Run:  python examples/chaos_drill.py
"""

import tempfile
import time

from repro.datapath.adder import ripple_carry_netlist
from repro.pnr.parallel import CompileTimeout
from repro.service import CompileOptions, CompileService, FaultPlan


def main() -> None:
    store_dir = tempfile.mkdtemp(prefix="chaos-drill-")

    # -- the fault-free reference ---------------------------------------
    with CompileService(workers=2, store=store_dir) as svc:
        reference = svc.compile(ripple_carry_netlist(8)).bitstreams()
    print(f"reference: rca8 compiled fault-free ({len(reference[0])} bytes)")

    # -- act 1: kill a worker mid-compile -------------------------------
    plan = FaultPlan.from_specs([("pool.worker", "die", {"token": "0"})])
    print(f"\nact 1: worker kill (plan {plan.digest()[:12]})")
    with CompileService(workers=2) as svc, plan.activate():
        result = svc.compile(ripple_carry_netlist(8))
        stats = svc.stats()
    assert result.bitstreams() == reference
    assert stats["worker_restarts"] == 1
    print(
        "  worker killed, resubmitted once, byte-identical recovery "
        f"(worker_restarts={stats['worker_restarts']})"
    )

    # -- act 2: corrupt the persisted artifact on load ------------------
    plan = FaultPlan.from_specs([("store.load", "corrupt",)], seed=1)
    print(f"\nact 2: store corruption (plan {plan.digest()[:12]})")
    with CompileService(workers=2, store=store_dir) as svc, plan.activate():
        result = svc.compile(ripple_carry_netlist(8))
        stats = svc.stats()
    assert result.bitstreams() == reference
    assert stats["store"]["quarantined"] == 1
    assert stats["compiles"] == 1
    print(
        "  blob corrupted, quarantined, recompiled to identical bytes "
        f"(quarantined={stats['store']['quarantined']}, "
        f"compiles={stats['compiles']})"
    )

    # -- act 3: an impossible deadline ----------------------------------
    deadline = 0.05
    print(f"\nact 3: deadline expiry ({deadline}s against a cold rca8)")
    with CompileService(workers=0) as svc:
        t0 = time.perf_counter()
        try:
            svc.compile(ripple_carry_netlist(8), CompileOptions(deadline=deadline))
            raise AssertionError("an impossible deadline must expire")
        except CompileTimeout:
            elapsed = time.perf_counter() - t0
        stats = svc.stats()
    assert elapsed < 2 * deadline
    assert stats["timeouts"] == 1
    print(
        f"  CompileTimeout after {elapsed:.3f}s (< 2x the deadline), "
        f"on the books (timeouts={stats['timeouts']})"
    )

    # -- the books ------------------------------------------------------
    assert stats["submissions"] == stats["settled"] + stats["shed"]
    assert stats["pending"] == 0
    print(
        "\nchaos drill: books balanced — submissions == settled + shed, "
        "nothing pending, nothing wrong-byted"
    )


if __name__ == "__main__":
    main()
