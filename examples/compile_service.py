"""A small compile-service session: cache, coalescing, delta recompile.

PR 7 turned the one-shot compile flow into a served system
(`repro.service.CompileService`): jobs are keyed on a canonical
content hash of the netlist (order- and name-invariant), duplicate
submissions coalesce onto one compile, results live in an LRU cache,
and an edited netlist can be *recompiled incrementally* — keeping the
cached placement and replaying route journals for undisturbed nets.

This session walks all four behaviours:

1. three clients submit the same adder under different net spellings —
   one compile, three answers, each with its own pin names;
2. a burst of concurrent duplicate jobs coalesces;
3. a one-gate edit takes the delta path and is checked against a cold
   compile of the same edit;
4. the service stats expose exact hit/miss/coalesce accounting.

Run:  python examples/compile_service.py
"""

import time

from repro.datapath.adder import ripple_carry_netlist
from repro.netlist import Netlist, canonical_hash
from repro.pnr import compile_to_fabric, verify_equivalence
from repro.service import CompileService


def renamed_adder(prefix: str) -> Netlist:
    """rca4 with every net, cell and port renamed — same circuit."""
    base = ripple_carry_netlist(4)
    mapping = {
        p: f"{prefix}{i}"
        for i, p in enumerate(list(base.inputs) + list(base.outputs))
    }

    def m(net: str) -> str:
        return mapping.get(net, f"{prefix}_{net}")

    out = Netlist(f"adder_{prefix}")
    for p in base.inputs:
        out.add_input(m(p))
    for p in base.outputs:
        out.add_output(m(p))
    for c in base.cells:
        out.add(c.kind, f"{prefix}.{c.name}", [m(i) for i in c.inputs],
                m(c.output), delay=c.delay, **dict(c.params))
    return out


def one_gate_edit(nl: Netlist) -> Netlist:
    """Flip the first AND gate to OR — a one-cell design edit."""
    flip = next(c for c in nl.cells if c.kind == "and").name
    out = Netlist(nl.name)
    for p in nl.inputs:
        out.add_input(p)
    for p in nl.outputs:
        out.add_output(p)
    for c in nl.cells:
        kind = "or" if c.name == flip else c.kind
        out.add(kind, c.name, list(c.inputs), c.output,
                delay=c.delay, **dict(c.params))
    return out


def main() -> None:
    print("== compile service session ==")
    a, b = ripple_carry_netlist(4), renamed_adder("p")
    print(f"  content hash:     rca4        {canonical_hash(a)[:16]}...")
    print(f"                    renamed     {canonical_hash(b)[:16]}... "
          f"({'same' if canonical_hash(a) == canonical_hash(b) else 'DIFFERENT'})")

    with CompileService(workers=2, cache_capacity=8) as svc:
        # 1. same circuit, three spellings
        views = [
            svc.compile(ripple_carry_netlist(4)),
            svc.compile(renamed_adder("p")),
            svc.compile(renamed_adder("q")),
        ]
        streams = {tuple(v.bitstreams()) for v in views}
        print(f"  three spellings:  {svc.stats()['compiles']} compile, "
              f"{len(streams)} distinct artifact, ports remapped per client")
        assert len(streams) == 1 and svc.stats()["compiles"] == 1

        # 2. a concurrent duplicate burst
        futures = [svc.submit(ripple_carry_netlist(8)) for _ in range(6)]
        burst = [f.result() for f in futures]
        s = svc.stats()
        print(f"  duplicate burst:  6 jobs -> {s['compiles'] - 1} compile "
              f"({s['coalesced'] + s['cache']['hits'] - 2} coalesced/hit)")
        assert len({tuple(r.bitstreams()) for r in burst}) == 1

        # 3. incremental recompile of a one-gate edit
        base = burst[0]
        edited = one_gate_edit(ripple_carry_netlist(8))
        t0 = time.perf_counter()
        inc = svc.recompile(edited, base)
        inc_ms = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        cold = compile_to_fabric(one_gate_edit(ripple_carry_netlist(8)),
                                 seed=0, workers=0)
        cold_ms = (time.perf_counter() - t0) * 1e3
        report = verify_equivalence(inc.result, n_vectors=256, event_vectors=4)
        print(f"  delta recompile:  {inc_ms:.1f} ms vs {cold_ms:.1f} ms cold "
              f"({cold_ms / inc_ms:.1f}x), verified on "
              f"{report['vectors_batch']} batch + {report['vectors_event']} "
              f"event vectors")
        assert inc.incremental and report["ok"]

        # 4. the books balance
        s = svc.stats()
        c = s["cache"]
        print(f"  accounting:       {s['submissions']} submissions = "
              f"{s['compiles']} compiles + {s['coalesced']} coalesced + "
              f"{c['hits']} hits + {s['incremental_compiles']} incremental")
        assert c["lookups"] == c["hits"] + c["misses"]
    print("  service session:  all artifacts byte-consistent, books balanced")


if __name__ == "__main__":
    main()
