"""Multi-array sharding: a 4x4 multiplier compiled across chiplets.

The 4-bit array multiplier tech-maps to 168 gates, 32 levels deep.
That clears a side-24 array's monotone depth bound (24 + 24 - 1 = 47
chained gates) but not its placement/routing capacity: the auto-sizer
wants a 36x36 array — bigger than our (pretend) chiplet.  (rca16, the
other bench design, exceeds even the depth bound.)  `compile_sharded`
partitions the design with a min-cut over the tech-mapped gate graph,
compiles every shard onto its own `CellArray`, lifts the crossing nets
into explicit inter-array channels, composes per-shard static timing
into one system report, and proves the whole thing equivalent to the
source netlist on both simulation backends — the batch backend sweeping
each shard independently and stitching channel values.

Run:  python examples/sharded_multiplier.py
"""

from repro.datapath.multiplier import array_multiplier_netlist
from repro.pnr import compile_sharded

MAX_SIDE = 24


def main() -> None:
    source = array_multiplier_netlist(4)
    print("== 4x4 array multiplier across chiplet arrays ==")
    print(f"  source netlist:   {source.n_cells} cells")
    result = compile_sharded(source, max_side=MAX_SIDE, seed=0)
    s = result.stats

    print(f"  chiplet budget:   arrays of at most {MAX_SIDE}x{MAX_SIDE} cells")
    print(f"  shards chosen:    {s.n_shards}")
    for i, shard in enumerate(result.shards):
        st = shard.stats
        print(
            f"    shard {i}: {len(shard.design.gates)} gates on a "
            f"{shard.array.n_rows}x{shard.array.n_cols} array "
            f"({st.cells_logic} logic + {st.cells_route} route cells, "
            f"local cycle {st.cycle_time})"
        )
    print(
        f"  channels:         {s.cut_nets} cut nets, {s.cut_size} crossings"
    )
    for ch in result.channels:
        sinks = ", ".join(
            f"shard {t} @ {w}" for t, w in sorted(ch.sink_wires.items())
        )
        print(
            f"    {ch.net}: shard {ch.source_shard} cell "
            f"{ch.source_cell} @ {ch.source_wire} -> {sinks} "
            f"(+{ch.delay} delay)"
        )

    t = result.timing
    crossings = sum(1 for step in t.critical_path if step.kind == "channel")
    print(
        f"  system timing:    cycle {t.cycle_time} units "
        f"(ideal-wire logic depth {t.logic_delay}), worst slack "
        f"{t.worst_slack:+d}, critical path crosses "
        f"{crossings} channel(s)"
    )

    report = result.verify(n_vectors=1024, event_vectors=4)
    print(
        f"  verified:         {report['vectors_batch']} random vectors, "
        f"{result.n_shards} shards swept independently per vector — "
        "equivalent on batch + event backends"
    )

    bits = result.to_bitstreams()
    total = sum(len(b) for b in bits)
    print(f"  bitstreams:       {len(bits)} per-chiplet streams, "
          f"{total} config bits total")


if __name__ == "__main__":
    main()
