"""Defect-adaptive compilation: one golden compile, a lot of dies.

The paper's manufacturability argument (Section 3) is statistical:
at nano scale every die carries defects, so the architecture must
tolerate them — and PR 8 makes the *compiler* carry that argument.
A `DefectMap` names one die's dead cells, dead wire segments and
stuck configuration rows; the flow hard-blocks those resources; and
`repair_for_die` adapts an already-compiled golden artifact to each
die instead of recompiling from scratch, keeping every defect-free
placement and route.

This session walks the fleet workflow:

1. compile the 8-bit adder once — the *golden* artifact;
2. sample a lot of defective dies from the device-variation models
   (`sample_die` at sigma_vt = 0.05, the paper's Section 3 knob);
3. adapt the golden compile to every die through the service's
   die-keyed cache (`compile_for_die`), each result proven to touch
   no dead resource;
4. read the books: one compile, N repairs, exact accounting.

Run:  python examples/die_repair.py
"""

import time

from repro.arch.montecarlo import cell_fail_probability
from repro.datapath.adder import ripple_carry_netlist
from repro.pnr import assert_defect_clean, sample_die, verify_equivalence
from repro.service import CompileService

SIGMA_VT = 0.05
N_DIES = 8


def main() -> None:
    nl = ripple_carry_netlist(8)
    print(f"device variation sigma_vt = {SIGMA_VT}: a cell is dead with "
          f"p = {cell_fail_probability(SIGMA_VT):.4f}")

    with CompileService(workers=0, cache_capacity=32) as svc:
        t0 = time.perf_counter()
        golden = svc.compile(ripple_carry_netlist(8))
        golden_ms = (time.perf_counter() - t0) * 1e3
        rows, cols = golden.result.array.n_rows, golden.result.array.n_cols
        print(f"golden compile: rca8 on a {rows}x{cols} array "
              f"in {golden_ms:.0f} ms\n")

        repaired = fallback = 0
        for seed in range(N_DIES):
            die = sample_die(rows, cols, sigma_vt=SIGMA_VT, seed=seed)
            t0 = time.perf_counter()
            served = svc.compile_for_die(ripple_carry_netlist(8), die)
            ms = (time.perf_counter() - t0) * 1e3
            assert_defect_clean(served.result.array, die)
            verify_equivalence(served.result, n_vectors=64, event_vectors=2)
            how = "warm repair" if served.repaired else "cold fallback"
            repaired += served.repaired
            fallback += not served.repaired
            print(f"  die {seed}: {die.n_defects:>2} defects -> {how} "
                  f"in {ms:5.1f} ms, verified, defect-clean")

        stats = svc.stats()

    print(f"\ndie repair: {repaired + fallback} dies adapted from "
          f"1 golden compile ({repaired} warm repairs, "
          f"{fallback} cold fallbacks)")
    ok = (
        stats["compiles"] == 1 + fallback
        and stats["repairs"] == repaired
        and stats["repair_fallbacks"] == fallback
    )
    print(f"service accounting: compiles={stats['compiles']} "
          f"repairs={stats['repairs']} "
          f"repair_fallbacks={stats['repair_fallbacks']} -> "
          f"{'books balanced' if ok else 'MISMATCH'}")


if __name__ == "__main__":
    main()
