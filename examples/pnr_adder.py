"""Place-and-route: the Fig. 10 adder slice compiled automatically.

PR 1 made every design a backend-neutral netlist; this example runs the
other direction: `repro.pnr.compile_to_fabric` takes a netlist and
produces a configured `CellArray` — tech-mapped to NAND rows, placed by
simulated annealing, routed through feed-through cells, and verified
against the source on both simulation backends.

Two designs go through the flow:

1. the paper's Fig. 10 full-adder slice — the hand-crafted 3-cell macro
   is lowered to its netlist and re-compiled automatically, so the
   hand layout and the compiler's layout can be compared cell for cell;
2. a Sutherland micropipeline stage (Fig. 11) — C-element control plus
   capture-pass data latches, exercising the stateful cell pairs and
   the synthesised reset rail.

Run:  python examples/pnr_adder.py
"""

import numpy as np

from repro.asynclogic.micropipeline import micropipeline_netlist
from repro.fabric.array import CellArray
from repro.netlist import BatchBackend, EventBackend
from repro.pnr import compile_to_fabric, verify_equivalence
from repro.sim.values import ONE, ZERO
from repro.synth.macros import full_adder_slice, full_adder_testbench


def compile_adder() -> None:
    print("== Fig. 10 adder slice through the automatic flow ==")
    source, stimulus, golden = full_adder_testbench()
    hand_cells = full_adder_slice().n_cells
    result = compile_to_fabric(source, seed=0)
    s = result.stats
    print(f"  source netlist:   {source.n_cells} cells / {len(source.net_names())} nets")
    print(f"  target array:     {result.array.n_rows}x{result.array.n_cols}")
    print(f"  mapped gates:     {s.n_gates} (logic cells: {s.cells_logic})")
    print(f"  routing cells:    {s.cells_route} ({s.routing_overhead:.2f} per logic cell)")
    print(f"  wirelength:       {s.wirelength} wires (placement HPWL {s.hpwl})")
    print(f"  utilisation:      {s.utilisation:.1%} of the region")
    print(f"  hand-placed macro: {hand_cells} cells — the compiler pays "
          f"{s.cells_used} for position independence")

    t = result.timing
    gates_on_path = [p.name for p in t.critical_path if p.kind in ("gate", "pair")]
    print(f"  timing:           cycle time {t.cycle_time} units "
          f"(logic {t.logic_delay} + wire {t.wire_delay}), "
          f"worst slack {t.worst_slack:+d} vs the ideal-wire bound")
    print(f"  critical path:    {t.endpoint!r} via "
          f"{' -> '.join(gates_on_path)}")

    report = verify_equivalence(result, n_vectors=1024, event_vectors=8)
    print(f"  verified: {report['vectors_batch']} random vectors (batch), "
          f"{report['vectors_event']} on the event backend")

    # The paper's 8 complement-consistent input patterns, bit for bit.
    fabric = result.fabric_netlist().netlist
    stim = {result.input_wires[k]: v for k, v in stimulus.items()}
    got = BatchBackend().evaluate(
        fabric, stim, outputs=[result.output_wires[n] for n in golden]
    )
    ok = all(
        np.array_equal(got[result.output_wires[n]], v) for n, v in golden.items()
    )
    print(f"  golden vectors:   {'match' if ok else 'MISMATCH'}")
    assert ok, "configured array disagrees with the paper's golden vectors"

    bits = result.to_bitstream()
    clone = CellArray.from_bitstream(bits)
    intact = clone.to_bitstream().tolist() == bits.tolist()
    print(f"  bitstream:        {len(bits)} bits, round trip "
          f"{'intact' if intact else 'BROKEN'}")
    assert intact, "bitstream did not round trip"


def compile_micropipeline_stage() -> None:
    print("== micropipeline stage (Fig. 11) on the fabric ==")
    source, _ports = micropipeline_netlist(1, data_width=2, auto_sink=False)
    result = compile_to_fabric(source, seed=0)
    s = result.stats
    pairs = sum(1 for g in result.design.gates.values() if g.is_stateful)
    print(f"  stateful pairs:   {pairs} (C-element + 2 capture-pass latches)")
    print(f"  cells:            {s.cells_logic} logic + {s.cells_route} routing "
          f"on a {result.array.n_rows}x{result.array.n_cols} array")
    print(f"  reset rail:       {result.reset_wire} (synthesised, active low)")
    print(f"  timing:           cycle time {result.timing.cycle_time} units "
          f"(paths capture at the pair macros' pins)")

    sim = EventBackend().elaborate(result.fabric_netlist().netlist)
    sim.drive(result.reset_wire, ZERO)
    for name in ("req_in", "ack_out", "din[0]", "din[1]"):
        sim.drive(result.input_wires[name], ZERO)
    sim.run_to_quiescence(max_time=10_000)
    sim.drive(result.reset_wire, ONE)
    sim.run_to_quiescence(max_time=sim.now + 10_000)

    # Push one two-phase token carrying din = 0b10.
    sim.drive(result.input_wires["din[1]"], ONE)
    sim.run_to_quiescence(max_time=sim.now + 10_000)
    sim.drive(result.input_wires["req_in"], ONE)
    sim.run_to_quiescence(max_time=sim.now + 10_000)
    d0 = sim.value(result.output_wires["d[0][0]"])
    d1 = sim.value(result.output_wires["d[0][1]"])
    req = sim.value(result.output_wires["c[0]"])
    captured = (req, d1, d0) == (ONE, ONE, ZERO)
    print(f"  token pushed:     req_out={req} data={d1}{d0} "
          f"({'captured' if captured else 'WRONG'})")
    assert captured, "micropipeline stage did not capture the token"


def main() -> None:
    compile_adder()
    print()
    compile_micropipeline_stage()


if __name__ == "__main__":
    main()
