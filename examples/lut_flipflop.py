"""The Fig. 9 tile as an application: a registered 3-LUT toggle pipeline.

Builds the paper's configured logic cell — complement generation, a 3-LUT
and an edge-triggered D flip-flop — and runs it as a tiny synchronous
design: q follows f(x, y, z) one clock later.

Run:  python examples/lut_flipflop.py
"""

from repro.core.platform import PolymorphicPlatform
from repro.synth.macros import complement_cell, dff_pair, lut_pair_from_table
from repro.synth.qm import minimise
from repro.synth.truthtable import TruthTable


def main() -> None:
    # The LUT computes the majority function of its three inputs.
    table = TruthTable.from_function(3, lambda x, y, z: (x + y + z) >= 2)
    cover = minimise(table)
    print(f"LUT function: majority(x, y, z) -> {len(cover)} product terms")
    for p in cover:
        print(f"  term: {p.to_string(['x', 'y', 'z'])}")

    platform = PolymorphicPlatform(1, 8)
    comp = platform.place(complement_cell(3), 0, 0)
    lut = platform.place(lut_pair_from_table(table), 0, 1)
    ff = platform.place(dff_pair(), 0, 4)
    platform.connect(lut.outputs["f"], ff.inputs["d"])

    now = 0

    def set_inputs(x: int, y: int, z: int) -> None:
        for name, b in zip(("x0", "x1", "x2"), (x, y, z)):
            platform.drive_bit(comp.inputs[name], b)

    def clock() -> None:
        nonlocal now
        for level in (0, 1, 0):
            platform.drive_bit(ff.inputs["clk"], level)
            platform.drive_bit(ff.inputs["clk_n"], 1 - level)
            now += 120
            platform.run(now)

    # Initialise the flip-flop out of its power-up X state.
    set_inputs(0, 0, 0)
    clock()
    clock()

    print("\n  x y z | f=maj | q (after edge)")
    print("  ------+-------+---------------")
    for vec in [(1, 1, 0), (1, 0, 0), (0, 1, 1), (0, 0, 1), (1, 1, 1)]:
        set_inputs(*vec)
        clock()
        f_now = platform.bit(lut.outputs["f"])
        q_now = platform.bit(ff.outputs["q"])
        x, y, z = vec
        print(f"  {x} {y} {z} |   {f_now}   |   {q_now}")

    stats = platform.stats()
    print(f"\nfabric usage: {stats.n_cells_used} cells, "
          f"{stats.n_gates} simulated gates, "
          f"{stats.config_bits} configuration bits held")
    print("(paper Fig. 9: LUT pair + flip-flop pair = 4 cells; we spend a "
          "5th on explicit complement generation)")


if __name__ == "__main__":
    main()
