"""A GALS system: two clock islands joined by an asynchronous wrapper.

Reproduces the Section 4.1 argument end to end: variable-sized synchronous
modules carved from the fine-grained fabric, an async channel with
synchroniser latency between them, and the clock-power payoff of dropping
the global clock tree.

Run:  python examples/gals_system.py
"""

from repro.arch.power import clock_power_saving
from repro.asynclogic.arbiter import flops_for_target_mtbf, synchronizer_mtbf
from repro.asynclogic.gals import AsyncChannel, ClockDomain, GalsSystem
from repro.fabric.floorplan import Floorplan, Region


def main() -> None:
    print("== floorplanning two sync islands on a 64x64 fabric ==")
    plan = Floorplan(64, 64)
    dsp = plan.allocate(Region("dsp", 0, 0, 24, 40))       # 960 cells
    ctrl = plan.allocate_anywhere("ctrl", 12, 18)          # 216 cells
    print(f"  dsp  region: {dsp.n_rows}x{dsp.n_cols} = {dsp.cells} cells")
    print(f"  ctrl region: {ctrl.n_rows}x{ctrl.n_cols} = {ctrl.cells} cells")
    print(f"  utilisation: {plan.utilisation * 100:.0f}%, "
          f"largest free square {plan.largest_free_square()} cells")
    frag = plan.internal_fragmentation({"dsp": 950, "ctrl": 210})
    print(f"  exact-fit internal fragmentation: {frag * 100:.1f}% "
          "(the paper's page-size problem avoided)")

    print("\n== cross-domain token flow ==")
    fast = ClockDomain("dsp", period_ps=120, cells=dsp.cells)
    slow = ClockDomain("ctrl", period_ps=330, cells=ctrl.cells)
    system = GalsSystem(fast, slow, AsyncChannel("dsp", "ctrl", capacity=4))
    result = system.run(3_000_000)
    print(f"  produced {result.tokens_produced}, consumed {result.tokens_consumed}, "
          f"in order: {result.in_order}")
    print(f"  throughput {result.throughput_per_ns:.4f} tokens/ns "
          f"(slower-domain bound {system.ideal_throughput_per_ns():.4f})")
    print(f"  producer stalled {result.producer_stalls} times (wrapper backpressure)")

    print("\n== wrapper engineering ==")
    mtbf = synchronizer_mtbf(1 / 120e-12, 1 / 330e-12, 2 * 120e-12, 80e-12)
    print(f"  2-flop synchroniser MTBF: {mtbf:.2e} s")
    depth = flops_for_target_mtbf(3.15e7, 1 / 120e-12, 1 / 330e-12, 80e-12)
    print(f"  flops for 1-year MTBF:    {depth}")

    print("\n== clock-power saving vs one global tree ==")
    for domains in (4, 16, 64):
        s = clock_power_saving(n_sinks=1e6, n_domains=domains)
        print(f"  {domains:3d} domains: {s * 100:5.1f}% of clock power saved")


if __name__ == "__main__":
    main()
