"""The Fig. 11/12 pipeline: an elastic FIFO moving a burst of data.

A gate-level Sutherland micropipeline (Muller C-element control chain +
event-controlled storage per bit) carries a packet stream with two-phase
handshaking; the protocol checker audits every transfer.

Run:  python examples/async_micropipeline.py
"""

import numpy as np

from repro.asynclogic.handshake import check_two_phase, completed_transfers
from repro.asynclogic.micropipeline import MicropipelineSim, PipelineModel
from repro.sim.waveform import TraceSet


def main() -> None:
    print("== 4-stage micropipeline FIFO, 8-bit data ==")
    pipe = MicropipelineSim(n_stages=4, data_width=8)
    payload = [0x5A, 0x3C, 0xF0, 0x0F, 0x81, 0x7E]
    accept_times = []
    for word in payload:
        t = pipe.push(word)
        accept_times.append(t)
        print(f"  pushed 0x{word:02X} (accepted at t={t})")
    pipe.drain(4000)
    print(f"  last word at output: 0x{pipe.output_value():02X}")
    print(f"  tokens delivered:    {pipe.output_tokens()}")

    traces = TraceSet(pipe.sim)
    violations = check_two_phase(traces["req_in"], traces["c[0]"])
    transfers = completed_transfers(traces["req_in"], traces["c[0]"])
    print(f"  handshake audit:     {transfers} transfers, "
          f"{len(violations)} protocol violations")

    gaps = np.diff(accept_times[2:])
    print(f"  steady-state cycle:  {gaps.mean():.1f} time units "
          f"(depth-independent: the elastic FIFO property)")

    print("\n== token-flow model: throughput vs depth ==")
    for depth in (2, 4, 8, 16):
        m = PipelineModel(n_stages=depth, forward_ps=100, reverse_ps=60)
        print(f"  {depth:2d} stages: {m.throughput_per_ns:.3f} tokens/ns, "
              f"empty latency {m.empty_latency_ps:.0f} ps, "
              f"peak occupancy {m.max_occupancy:.1f}")
    m = PipelineModel(n_stages=4, forward_ps=100, reverse_ps=60)
    print(f"\n  vs synchronous pipeline clocked at worst-case 250 ps: "
          f"{m.against_synchronous(250.0):.2f}x throughput")


if __name__ == "__main__":
    main()
